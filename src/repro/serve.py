"""Long-running experiment service: ``python -m repro serve``.

The campaign commands are one-shot: build the cell list, run, print,
exit.  The service mode keeps an :class:`~repro.harness.parallel.
ExperimentEngine` resident and accepts **experiment jobs** as JSON lines
over a local ``AF_UNIX`` socket, streaming incremental results and
telemetry snapshots back on the same connection — the shape a
dashboard, a batch scheduler or the CI smoke job talks to.

Protocol (newline-delimited JSON, one object per line, both ways):

Requests::

    {"op": "submit", "job": {"kind": "population", "size": 5000, ...}}
    {"op": "cancel", "job_id": "job-3"}
    {"op": "status"}
    {"op": "ping"}
    {"op": "shutdown"}

A ``submit`` streams frames until the job resolves; every frame carries
``type`` and ``ts`` (unix seconds)::

    {"type": "accepted",  "job": "job-1", "kind": "population", ...}
    {"type": "result",    "job": "job-1", "seq": 0, "ok": true, "payload": ...}
    {"type": "telemetry", "job": "job-1", "done": 50, "errors": 0,
     "cached": 0, "computed": 50, "quantiles": {"p50_ms": ...}, ...}
    {"type": "done",      "job": "job-1", "report": {...}}

plus ``cancelled`` / ``error`` terminal frames, ``pong`` for pings and
``status`` / ``bye`` for the control ops.  Large population jobs set
``result_every`` to thin the per-page result frames (0 = none, rely on
the periodic telemetry frames); the summary statistics are unaffected —
aggregation happens server-side in the bounded
:class:`~repro.workloads.population.PopulationAggregate`.

Concurrency model: one accept loop plus one thread per connection.
Jobs execute on their connection's thread, serialized by a run lock
(the engine's process pool is the parallelism; overlapping jobs would
fight over workers).  ``cancel`` — from any connection — sets the job's
cancel event, which the runner polls between results; a client that
disconnects mid-stream cancels its own job the same way.  ``shutdown``
cancels everything, closes the listener and unlinks the socket path.

:func:`submit_and_stream`, :func:`request` and :func:`serve_forever`
are the client/CLI halves used by ``python -m repro serve`` and the
tests.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "ExperimentServer",
    "JOB_KINDS",
    "request",
    "serve_forever",
    "submit_and_stream",
]

#: Telemetry frame cadence: one snapshot per this many finished cells.
DEFAULT_TELEMETRY_EVERY = 50


class _ClientGone(Exception):
    """The submitting client hung up mid-stream."""


class _Cancelled(Exception):
    """The job's cancel event fired."""


class JobState:
    """Registry entry for one submitted job."""

    def __init__(self, job_id: str, kind: str):
        self.job_id = job_id
        self.kind = kind
        self.status = "running"  # running | done | cancelled | error
        self.cancel = threading.Event()
        self.results = 0
        self.errors = 0
        self.started = time.time()
        self.finished: Optional[float] = None

    def describe(self) -> dict:
        return {
            "id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "results": self.results,
            "errors": self.errors,
        }


# ----------------------------------------------------------------------
# job kinds
# ----------------------------------------------------------------------
def _run_population_job(spec: dict, emit, state: JobState) -> dict:
    """A population sweep streamed cell by cell (see ``workloads.population``)."""
    from .harness.parallel import ExperimentEngine
    from .telemetry.sketch import QuantileSketch
    from .workloads.population import (
        DEFAULT_BROWSER_MIX,
        PopulationAggregate,
        PopulationModel,
        population_cells,
        session_cells,
    )

    size = int(spec.get("size", 1000))
    seed = int(spec.get("seed", 0))
    mode = str(spec.get("mode", "model"))
    visits = int(spec.get("visits", 1))
    sessions = spec.get("sessions")
    window = spec.get("window")
    result_every = int(spec.get("result_every", 0))
    telemetry_every = int(spec.get("telemetry_every", DEFAULT_TELEMETRY_EVERY))
    engine = ExperimentEngine(
        workers=spec.get("parallel"), cache=spec.get("cache") or None
    )
    if sessions is not None:
        model = PopulationModel(size=size, seed=seed, browser_mix=DEFAULT_BROWSER_MIX)
        cells = session_cells(model, int(sessions), mode=mode)
    else:
        cells = population_cells(size, seed=seed, mode=mode, visits=visits)

    aggregate = PopulationAggregate()
    overall = QuantileSketch()
    seq = 0
    for result in engine.stream(cells, window=window):
        if state.cancel.is_set():
            raise _Cancelled()
        aggregate.add(result)
        if result.ok:
            overall.add(int(round(result.payload["load_ms"] * 1000.0)))
        else:
            state.errors += 1
        if result_every and seq % result_every == 0:
            emit(
                type="result",
                seq=seq,
                ok=result.ok,
                cached=result.cached,
                payload=result.payload if result.ok else None,
                error=result.error,
            )
        seq += 1
        state.results = seq
        if telemetry_every and seq % telemetry_every == 0:
            emit(
                type="telemetry",
                done=seq,
                errors=len(aggregate.errors) + aggregate.error_overflow,
                cached=engine.cache_hits,
                computed=engine.computed,
                quantiles={
                    label: (None if value is None else round(value / 1000.0, 3))
                    for label, value in overall.quantiles().items()
                },
            )
    report = aggregate.report()
    report.update(
        {
            "size": size,
            "seed": seed,
            "mode": mode,
            "sessions": sessions,
            "computed": engine.computed,
            "cache_hits": engine.cache_hits,
        }
    )
    return report


def _run_campaign_job(spec: dict, emit, state: JobState) -> dict:
    """A fuzz campaign (``explore.campaign``) with progress telemetry."""
    from .explore.campaign import DEFAULT_ATTACK, DEFAULT_DEFENSE, run_campaign

    telemetry_every = int(spec.get("telemetry_every", 4))

    def on_result(done: int, report: dict) -> None:
        if state.cancel.is_set():
            raise _Cancelled()
        state.results = done
        if telemetry_every and done % telemetry_every == 0:
            emit(
                type="telemetry",
                done=done,
                errors=len(report.get("errors", [])),
                cached=report.get("cached_shards", 0),
                computed=report.get("computed_shards", 0),
                quantiles={},
            )

    return run_campaign(
        attack=str(spec.get("attack", DEFAULT_ATTACK)),
        defense=str(spec.get("defense", DEFAULT_DEFENSE)),
        seed=int(spec.get("seed", 0)),
        budget=int(spec.get("budget", 50)),
        strategy=str(spec.get("strategy", "mixed")),
        parallel=spec.get("parallel"),
        cache=spec.get("cache") or None,
        max_witnesses=int(spec.get("max_witnesses", 5)),
        on_result=on_result,
    )


#: Job kind -> runner(spec, emit, state) -> final report dict.
JOB_KINDS: Dict[str, Callable[..., dict]] = {
    "population": _run_population_job,
    "campaign": _run_campaign_job,
}


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class ExperimentServer:
    """Unix-socket experiment service (see the module docstring)."""

    def __init__(self, socket_path: str, accept_timeout: float = 0.2):
        self.socket_path = socket_path
        self.accept_timeout = accept_timeout
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._jobs: Dict[str, JobState] = {}
        self._jobs_lock = threading.Lock()
        self._run_lock = threading.Lock()
        self._next_job = 0
        self._shutdown = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Bind, listen and spin up the accept loop (non-blocking)."""
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(8)
        listener.settimeout(self.accept_timeout)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()

    def wait(self) -> None:
        """Block until :meth:`shutdown` (the CLI's foreground mode)."""
        while not self._shutdown.is_set():
            self._shutdown.wait(0.5)

    def shutdown(self) -> None:
        """Cancel every job, stop accepting, unlink the socket path.

        Idempotent and blocking: every caller returns only after the
        cleanup ran (a second caller waits on the first via the lock),
        so the foreground CLI cannot exit with the socket file behind.
        """
        self._shutdown.set()
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
            with self._jobs_lock:
                for state in self._jobs.values():
                    state.cancel.set()
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=5.0)
            current = threading.current_thread()
            for thread in list(self._conn_threads):
                if thread is not current:
                    thread.join(timeout=5.0)
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    # -- accept/connection plumbing ------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [t for t in self._conn_threads if t.is_alive()]

    def _handle_connection(self, conn: socket.socket) -> None:
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        try:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except ValueError:
                    self._send(conn, {"type": "error", "message": "malformed JSON line"})
                    continue
                if not self._dispatch(conn, request):
                    break
        except (_ClientGone, OSError):
            pass
        finally:
            try:
                reader.close()
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _send(self, conn: socket.socket, frame: dict) -> None:
        frame.setdefault("ts", round(time.time(), 3))
        data = (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")
        try:
            conn.sendall(data)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise _ClientGone() from exc

    # -- request dispatch ----------------------------------------------
    def _dispatch(self, conn: socket.socket, request: dict) -> bool:
        """Handle one request; returns False when the connection should end."""
        op = request.get("op")
        if op == "ping":
            self._send(conn, {"type": "pong"})
            return True
        if op == "status":
            with self._jobs_lock:
                jobs = [state.describe() for state in self._jobs.values()]
            self._send(conn, {"type": "status", "jobs": jobs})
            return True
        if op == "cancel":
            job_id = str(request.get("job_id", ""))
            with self._jobs_lock:
                state = self._jobs.get(job_id)
            if state is None:
                self._send(conn, {"type": "error", "message": f"unknown job {job_id!r}"})
            else:
                state.cancel.set()
                self._send(conn, {"type": "cancelling", "job": job_id})
            return True
        if op == "shutdown":
            self._send(conn, {"type": "bye"})
            self.shutdown()  # joins every thread but this one
            return False
        if op == "submit":
            self._do_submit(conn, request.get("job") or {})
            return True
        self._send(conn, {"type": "error", "message": f"unknown op {op!r}"})
        return True

    def _do_submit(self, conn: socket.socket, spec: dict) -> None:
        kind = str(spec.get("kind", ""))
        runner = JOB_KINDS.get(kind)
        if runner is None:
            self._send(
                conn,
                {
                    "type": "error",
                    "message": f"unknown job kind {kind!r}; "
                    f"expected one of {sorted(JOB_KINDS)}",
                },
            )
            return
        with self._jobs_lock:
            self._next_job += 1
            state = JobState(f"job-{self._next_job}", kind)
            self._jobs[state.job_id] = state
        self._send(conn, {"type": "accepted", "job": state.job_id, "kind": kind})

        def emit(**frame) -> None:
            frame["job"] = state.job_id
            self._send(conn, frame)

        try:
            with self._run_lock:
                if state.cancel.is_set() or self._shutdown.is_set():
                    raise _Cancelled()
                report = runner(spec, emit, state)
            state.status = "done"
            emit(type="done", report=report)
        except _Cancelled:
            state.status = "cancelled"
            try:
                emit(type="cancelled", results=state.results)
            except _ClientGone:
                pass
        except _ClientGone:
            # the submitting client hung up: stop the job, keep serving
            state.cancel.set()
            state.status = "cancelled"
            raise
        except Exception as exc:  # noqa: BLE001 - job errors must not kill the server
            state.status = "error"
            emit(type="error", message=f"{type(exc).__name__}: {exc}")
        finally:
            state.finished = time.time()


# ----------------------------------------------------------------------
# client helpers
# ----------------------------------------------------------------------
def _connect(socket_path: str, timeout: Optional[float]) -> socket.socket:
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    conn.connect(socket_path)
    return conn


def request(socket_path: str, payload: dict, timeout: Optional[float] = 5.0) -> dict:
    """One request, one response frame (ping / status / cancel / shutdown)."""
    with _connect(socket_path, timeout) as conn:
        conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        line = reader.readline()
    if not line:
        raise ConnectionError("server closed the connection without a response")
    return json.loads(line)


def submit_and_stream(
    socket_path: str, job: dict, timeout: Optional[float] = None
) -> Iterator[dict]:
    """Submit ``job`` and yield every frame until a terminal one.

    Terminal frames are ``done``, ``cancelled`` and ``error``; the
    generator closes the connection when it is closed early, which the
    server treats as a cancellation of the in-flight job.
    """
    conn = _connect(socket_path, timeout)
    try:
        conn.sendall((json.dumps({"op": "submit", "job": job}) + "\n").encode("utf-8"))
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        for line in reader:
            line = line.strip()
            if not line:
                continue
            frame = json.loads(line)
            yield frame
            if frame.get("type") in ("done", "cancelled", "error"):
                return
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def serve_forever(socket_path: str) -> ExperimentServer:
    """Start a server on ``socket_path`` and block until it shuts down."""
    server = ExperimentServer(socket_path)
    server.start()
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return server
