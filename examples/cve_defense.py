"""The paper's Listing 2: CVE-2018-5092 — abort on a freed fetch.

Drives the use-after-free triggering sequence against a vulnerable
browser build, then the same sequence with JSKernel's worker-lifecycle
policy installed.

Run:  python examples/cve_defense.py
"""

from repro import Browser, JSKernel, UseAfterFreeError, vulnerable
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms


def drive_exploit(with_kernel: bool) -> str:
    browser = Browser(profile=vulnerable("firefox"), seed=1)
    if with_kernel:
        JSKernel().install(browser)
    browser.network.host_simple(
        parse_url("https://attacker.example/fetchedfile0.html"), 64_000
    )
    page = browser.open_page("https://attacker.example/")
    shared = {}
    done = {}

    def attack(scope):
        # worker.js (Listing 2 lines 1-6): fetch with an abort signal
        def worker_main(ws):
            controller = ws.AbortController()
            shared["controller"] = controller
            ws.fetch("/fetchedfile0.html", {"signal": controller.signal}).then(
                lambda _r: None, lambda _e: None
            )
            ws.postMessage("fetch-started")

        worker = scope.Worker(worker_main)

        def on_message(_event):
            worker.terminate()  # the false termination
            # main thread unload path: abort the outstanding signal
            scope.setTimeout(
                lambda: (shared["controller"].abort(cve="CVE-2018-5092"),
                         done.__setitem__("ok", True)),
                1,
            )

        worker.onmessage = on_message

    page.run_script(attack)
    try:
        browser.run(until=ms(500))
    except UseAfterFreeError as crash:
        return f"EXPLOITED: {crash}"
    return "safe: abort found no dangling request"


def main() -> None:
    print("Vulnerable Firefox :", drive_exploit(with_kernel=False))
    print("     with JSKernel :", drive_exploit(with_kernel=True))


if __name__ == "__main__":
    main()
