"""Automatic policy extraction — a prototype of the paper's future work.

§VI: "We leave it as a future work to automatically extract policies for
a new vulnerability."  This example runs the pipeline end to end: record
an exploit through an instrumented kernel, synthesize a deny policy from
the dangerous API crossings, and validate it against the exploit.

Run:  python examples/policy_extraction.py
"""

from repro.kernel.policies import extract_policy_for

CVES = ("cve-2013-1714", "cve-2017-7843", "cve-2015-7215", "cve-2018-5092")


def main() -> None:
    for cve in CVES:
        result = extract_policy_for(cve)
        print(f"== {cve} ==")
        if result.validated:
            print(f"  extracted and VALIDATED ({result.note})")
            for line in result.policy.describe().splitlines()[1:]:
                print("  " + line.strip())
        else:
            print(f"  extraction declined: {result.note}")
        print()


if __name__ == "__main__":
    main()
