"""Reproduce a slice of the paper's Table I from the command line.

Runs a selection of attacks against a selection of defenses and prints
the defended/vulnerable matrix with agreement against the paper.

Run:  python examples/defense_matrix.py
      python examples/defense_matrix.py --full          # all 22 x 8 cells
      python examples/defense_matrix.py cache-attack cve-2018-5092
"""

import sys

from repro.attacks import attack_names
from repro.harness import run_table1

DEFAULT_ATTACKS = [
    "cache-attack",
    "clock-edge",
    "svg-filtering",
    "loopscan",
    "cve-2018-5092",
    "cve-2013-1714",
]

DEFAULT_DEFENSES = ["legacy-chrome", "fuzzyfox", "deterfox", "tor", "chromezero", "jskernel"]


def main() -> None:
    args = sys.argv[1:]
    if "--full" in args:
        attacks, defenses = None, None  # everything
    elif args:
        unknown = set(args) - set(attack_names())
        if unknown:
            raise SystemExit(f"unknown attacks: {sorted(unknown)}; have {attack_names()}")
        attacks, defenses = args, DEFAULT_DEFENSES
    else:
        attacks, defenses = DEFAULT_ATTACKS, DEFAULT_DEFENSES

    result = run_table1(attacks=attacks, defenses=defenses)
    print(result.render())
    print()
    print(f"agreement with the paper's Table I: {result.agreement():.2%}")
    for cell in result.disagreements():
        print(f"  disagrees: {cell}")


if __name__ == "__main__":
    main()
