"""Quickstart: install JSKernel into a simulated browser and see what changes.

Run:  python examples/quickstart.py
"""

from repro import Browser, JSKernel, chrome
from repro.runtime.simtime import ms


def demo(with_kernel: bool) -> None:
    browser = Browser(profile=chrome(), seed=1)
    if with_kernel:
        JSKernel().install(browser)
    page = browser.open_page("https://example.com/")

    def script(scope):
        # an ordinary page: a timer, a frame callback and some busy work
        t0 = scope.performance.now()
        scope.busy_work(12.0)  # 12 ms of pure JavaScript computation
        t1 = scope.performance.now()
        print(f"  performance.now() across 12ms of computation: {t1 - t0:.3f} ms")

        scope.setTimeout(
            lambda: print(f"  setTimeout(5) fired at {scope.performance.now():.3f} ms"),
            5,
        )
        scope.requestAnimationFrame(
            lambda ts: print(f"  requestAnimationFrame timestamp: {ts:.3f} ms")
        )

    page.run_script(script)
    browser.run(until=ms(100))


def main() -> None:
    print("== Legacy Chrome (5 µs clock, real time) ==")
    demo(with_kernel=False)
    print()
    print("== Chrome + JSKernel (deterministic kernel time) ==")
    print("   computation is invisible; events land on the deterministic grid")
    demo(with_kernel=True)


if __name__ == "__main__":
    main()
