"""Writing a custom JSKernel security policy (paper §II-B3).

The paper's specific policies are manually written from a vulnerability's
triggering condition.  This example adds a policy of our own: workers may
issue at most N fetches — a rate-limiting policy in ~15 lines — and
installs it next to the built-in bundle.

Run:  python examples/custom_policy.py
"""

from repro import Browser, JSKernel, Policy, SecurityError, chrome
from repro.kernel.policies import DeterministicSchedulingPolicy, all_cve_policies
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms


class WorkerFetchQuotaPolicy(Policy):
    """Deny worker fetches beyond a per-thread quota."""

    name = "worker-fetch-quota"
    kind = "specific"

    def __init__(self, quota: int = 2):
        self.quota = quota
        self._counts = {}

    def on_api_call(self, api, kspace, info):
        if api != "fetch" or not kspace.label.startswith("kthread-"):
            return
        used = self._counts.get(kspace.label, 0) + 1
        self._counts[kspace.label] = used
        if used > self.quota:
            raise SecurityError(
                f"kernel policy: worker fetch quota ({self.quota}) exceeded"
            )


def main() -> None:
    kernel = JSKernel(
        policies=[DeterministicSchedulingPolicy(), WorkerFetchQuotaPolicy(quota=2)]
        + all_cve_policies()
    )
    browser = Browser(profile=chrome(), seed=1)
    kernel.install(browser)
    browser.network.host_simple(parse_url("https://app.example/data"), 2_000)
    page = browser.open_page("https://app.example/")
    log = []

    def script(scope):
        def worker_main(ws):
            for attempt in range(4):
                try:
                    ws.fetch("/data")
                    ws.postMessage(f"fetch {attempt + 1}: allowed")
                except SecurityError as denied:
                    ws.postMessage(f"fetch {attempt + 1}: {denied}")

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: log.append(event.data)

    page.run_script(script)
    browser.run(until=ms(500))
    for line in log:
        print(line)


if __name__ == "__main__":
    main()
