"""The paper's Listing 1: a worker postMessage flood as an implicit clock.

An attacker measures a secret operation (here: an SVG erode filter whose
cost depends on a cross-origin image's resolution) by counting onmessage
callbacks — no explicit clock API involved.  Against the legacy browser
the count tracks the secret; under JSKernel's deterministic scheduling it
is a constant.

Run:  python examples/implicit_clock_attack.py
"""

from repro import Browser, JSKernel, SimImage, chrome

LOW_RES = SimImage(320, 320, label="low-res", cross_origin=True)
HIGH_RES = SimImage(760, 760, label="high-res", cross_origin=True)


def measure(image: SimImage, with_kernel: bool) -> int:
    """Count onmessage callbacks while the filter runs (Listing 1)."""
    browser = Browser(profile=chrome(), seed=1)
    if with_kernel:
        JSKernel().install(browser)
    page = browser.open_page("https://attacker.example/")
    result = {}

    def attack(scope):
        # worker.js: flood postMessage (Listing 1, lines 2-5)
        def worker_main(ws):
            def tick():
                for _ in range(4):
                    ws.postMessage(1)
                ws.setTimeout(tick, 1)

            ws.setTimeout(tick, 1)

        worker = scope.Worker(worker_main)
        count = {"n": 0}
        worker.onmessage = lambda event: count.__setitem__("n", count["n"] + 1)

        element = scope.document.create_element("div")
        scope.document.body.append_child(element)
        marks = {}

        def frame(_ts):
            if "start" not in marks:
                marks["start"] = count["n"]
                scope.applyFilter(element, "erode", image, 2)  # the secret op
                scope.requestAnimationFrame(frame)
            else:
                result["count"] = count["n"] - marks["start"]
                worker.terminate()

        scope.setTimeout(lambda: scope.requestAnimationFrame(frame), 8)

    page.run_script(attack)
    browser.run_until(lambda: "count" in result)
    return result["count"]


def main() -> None:
    for label, with_kernel in (("Legacy Chrome", False), ("Chrome + JSKernel", True)):
        low = measure(LOW_RES, with_kernel)
        high = measure(HIGH_RES, with_kernel)
        verdict = "LEAKS the resolution" if low != high else "reveals nothing"
        print(f"{label}: onmessage count low-res={low}, high-res={high} -> {verdict}")


if __name__ == "__main__":
    main()
