"""Table III — raptor-tp6-1 hero-element loading times.

Paper: average JSKernel overhead 2.75% on Chrome, 3.85% on Firefox, and
"the time differences with and without JSKernel are smaller than the
standard deviation, i.e., the overhead is small enough"; occasionally
JSKernel even loads the hero earlier (Facebook/Youtube on Firefox),
because the kernel's deterministic schedule is one legal ordering.
"""

from conftest import scale

from repro.analysis.tables import render_table
from repro.harness import table3_raptor

RUNS = scale(6, 25)


def test_table3(once):
    rows = once(table3_raptor, runs=RUNS)
    table_rows = []
    for subtest, configs in rows.items():
        table_rows.append([
            subtest,
            f"{configs['legacy-chrome']['mean']:.1f}±{configs['legacy-chrome']['stdev']:.1f}",
            f"{configs['jskernel']['mean']:.1f}±{configs['jskernel']['stdev']:.1f}",
            f"{configs['legacy-firefox']['mean']:.1f}±{configs['legacy-firefox']['stdev']:.1f}",
            f"{configs['jskernel-firefox']['mean']:.1f}"
            f"±{configs['jskernel-firefox']['stdev']:.1f}",
        ])
    print()
    print(render_table(
        ["subtest", "Chrome", "JSKernel (C)", "Firefox", "JSKernel (F)"],
        table_rows, title="=== Table III: raptor-tp6-1 loading times (ms) ===",
    ))

    overheads = []
    for subtest, configs in rows.items():
        for base, kernel in (("legacy-chrome", "jskernel"),
                             ("legacy-firefox", "jskernel-firefox")):
            base_mean = configs[base]["mean"]
            kernel_mean = configs[kernel]["mean"]
            overhead = (kernel_mean - base_mean) / base_mean
            overheads.append(overhead)
            # per-subtest: difference stays within ~2 standard deviations
            spread = max(configs[base]["stdev"], configs[kernel]["stdev"], base_mean * 0.02)
            assert abs(kernel_mean - base_mean) <= base_mean * 0.12 + 2 * spread, subtest

    average_overhead = sum(overheads) / len(overheads)
    print(f"average JSKernel hero-load overhead: {average_overhead:+.2%} (paper: +2.75%/+3.85%)")
    assert average_overhead < 0.10
