"""§V-B2 — DOM cosine similarity on Alexa-like Top-100 sites.

Paper: "90% of websites have larger than 99% similarity scores if
visited with and without JSKernel.  We manually checked the rest ten
websites, which are all caused by dynamic contents, such as ads" — the
control visit (legacy vs legacy) scores within 2% on those sites.

Also §V-B3: a scripted week of browsing under JSKernel must surface no
functional issues (the three launch bugs exist as green regressions).
"""

from conftest import scale

from repro.harness import dom_similarity_survey, week_long_user_test

SITES = scale(30, 100)
DAYS = scale(2, 7)


def test_dom_similarity(once):
    survey = once(dom_similarity_survey, site_count=SITES)
    print()
    print(f"=== DOM similarity, {SITES} sites (JSKernel vs Chrome) ===")
    print(f"fraction above the 99% bar: {survey['fraction_above']:.2%} (paper: 90%)")
    print(f"sites below the bar: {len(survey['below_hosts'])}, "
          f"explained by dynamic content: {survey['below_explained_by_dynamic_content']}")

    assert survey["fraction_above"] >= 0.80
    # every below-bar site is explained by the dynamic-content control
    assert survey["below_explained_by_dynamic_content"] == len(survey["below_hosts"])


def test_week_long_user_experience(once):
    result = once(week_long_user_test, days=DAYS)
    print()
    print(f"=== {result['days']}-day user-experience test under JSKernel ===")
    print(f"issues: {len(result['issues'])} (paper: 3 launch bugs, then none after fixes)")
    for issue in result["issues"]:
        print("  -", issue)
    assert result["issues"] == []
