"""§V-A1 — 16-worker creation benchmark (pmav.eu web worker test).

Paper: "we created 16 workers and measured the time to create these
workers with 5 repeat experiments — the average overhead is 0.9% with
and without JSKernel extension."
"""

from repro.harness import worker_creation_overhead


def test_worker_creation(once):
    report = once(worker_creation_overhead)
    print()
    print("=== 16-worker creation benchmark ===")
    print(f"legacy Chrome: {report['baseline_ms']:.2f} ms")
    print(f"with JSKernel: {report['defense_ms']:.2f} ms")
    print(f"overhead: {report['overhead_pct']:+.2f}%  (paper: +0.9%)")

    # shape target: single-digit overhead; true parallelism retained
    assert report["overhead_pct"] < 10.0
