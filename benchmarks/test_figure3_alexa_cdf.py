"""Figure 3 — CDF of loading time, Alexa-like Top-500, seven browsers.

Paper claims: (1) JSKernel adds minimal, non-observable overhead — its
curves hug the native browsers; (2) DeterFox is similar to Firefox;
(3) Tor and Fuzzyfox are the slowest; (4) Chrome Zero incurs more
overhead than JSKernel.
"""

from conftest import engine_kwargs, scale

from repro.analysis.stats import median
from repro.analysis.tables import render_cdf_summary
from repro.harness.perf import FIGURE3_CONFIGS, figure3_cdf

SITES = scale(60, 500)
VISITS = scale(1, 3)


def test_figure3_cdf(once):
    series = once(figure3_cdf, site_count=SITES, visits=VISITS,
                  configs=FIGURE3_CONFIGS, **engine_kwargs())
    print()
    print(render_cdf_summary(
        series, title=f"=== Figure 3: loading times over {SITES} sites (ms) ==="
    ))

    chrome = median(series["legacy-chrome"])
    chrome_kernel = median(series["jskernel"])
    chromezero = median(series["chromezero"])
    firefox = median(series["legacy-firefox"])
    firefox_kernel = median(series["jskernel-firefox"])
    deterfox = median(series["deterfox"])

    # (1) JSKernel hugs the native browsers
    assert abs(chrome_kernel - chrome) / chrome < 0.05
    assert abs(firefox_kernel - firefox) / firefox < 0.05
    # (2) DeterFox similar to Firefox
    assert abs(deterfox - firefox) / firefox < 0.15
    # (3) Tor and Fuzzyfox are the slowest configurations
    slowest_two = sorted(
        FIGURE3_CONFIGS, key=lambda c: median(series[c]), reverse=True
    )[:2]
    assert set(slowest_two) == {"tor", "fuzzyfox"}
    # (4) Chrome Zero costs more than JSKernel on Chrome
    assert chromezero >= chrome_kernel - 0.01 * chrome
