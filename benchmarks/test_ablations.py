"""Ablations for the design choices DESIGN.md §5 calls out.

1. Deterministic scheduling vs pass-through: without the scheduling
   policy the kernel still interposes, but event-timing channels leak.
2. CVE policies vs none: without them the worker-lifecycle UAFs return.
3. Kernel logical clock (structural): clock-sampling channels stay
   defended even without any scheduling policy — the clock is the other
   half of the defense.
4. Fuzzy scheduling vs deterministic: fuzzy predictions (real time +
   jitter) fall to the averaging adversary; determinism does not.
"""

from repro.attacks import create
from repro.defenses import register
from repro.defenses.jskernel_defense import JSKernelDefense
from repro.kernel import JSKernel
from repro.kernel.policies import FuzzySchedulingPolicy, all_cve_policies


class JSKernelFuzzy(JSKernelDefense):
    """JSKernel running the fuzzy-time scheduling policy instead."""

    name = "jskernel-fuzzy"

    def __init__(self):
        super().__init__(JSKernel(policies=[FuzzySchedulingPolicy()] + all_cve_policies()))


register("jskernel-fuzzy", JSKernelFuzzy)


def _cell(attack, defense):
    return create(attack).run(defense)


def test_ablation_scheduling_policy(once):
    def run():
        return {
            "full": _cell("svg-filtering", "jskernel").defended,
            "no-determinism": _cell("svg-filtering", "jskernel-nodet").defended,
            "cache-full": _cell("cache-attack", "jskernel").defended,
            "cache-no-determinism": _cell("cache-attack", "jskernel-nodet").defended,
        }

    outcome = once(run)
    print()
    print("=== Ablation 1: deterministic scheduling ===")
    for name, defended in outcome.items():
        print(f"  {name:22s}: {'defended' if defended else 'VULNERABLE'}")
    assert outcome["full"] and outcome["cache-full"]
    assert not outcome["no-determinism"]
    assert not outcome["cache-no-determinism"]


def test_ablation_cve_policies(once):
    def run():
        return {
            "full": _cell("cve-2018-5092", "jskernel").defended,
            "no-cve-policies": _cell("cve-2018-5092", "jskernel-nocve").defended,
            "transferable-full": _cell("cve-2014-1488", "jskernel").defended,
            "transferable-no-cve": _cell("cve-2014-1488", "jskernel-nocve").defended,
        }

    outcome = once(run)
    print()
    print("=== Ablation 2: per-CVE policies ===")
    for name, defended in outcome.items():
        print(f"  {name:22s}: {'defended' if defended else 'VULNERABLE'}")
    assert outcome["full"] and outcome["transferable-full"]
    assert not outcome["no-cve-policies"]
    assert not outcome["transferable-no-cve"]


def test_ablation_kernel_clock_is_structural(once):
    def run():
        return {
            "css-animation": _cell("css-animation", "jskernel-nodet").defended,
            "clock-edge": _cell("clock-edge", "jskernel-nodet").defended,
        }

    outcome = once(run)
    print()
    print("=== Ablation 3: kernel logical clock (no scheduling policy) ===")
    for name, defended in outcome.items():
        print(f"  {name:22s}: {'defended' if defended else 'VULNERABLE'}")
    # clock-sampling channels are covered by the clock alone
    assert outcome["css-animation"] and outcome["clock-edge"]


def test_ablation_fuzzy_vs_deterministic(once):
    def run():
        return {
            "fuzzy-svg": _cell("svg-filtering", "jskernel-fuzzy").defended,
            "deterministic-svg": _cell("svg-filtering", "jskernel").defended,
        }

    outcome = once(run)
    print()
    print("=== Ablation 4: fuzzy-time vs deterministic scheduling ===")
    for name, defended in outcome.items():
        print(f"  {name:22s}: {'defended' if defended else 'VULNERABLE'}")
    # fuzz is averaged away; determinism is not (the paper's core thesis)
    assert not outcome["fuzzy-svg"]
    assert outcome["deterministic-svg"]
