"""Table II — SVG-filtering times and Loopscan maximum event intervals.

Paper values (ms):

    defense     SVG low  SVG high  loops google  loops youtube
    Chrome        16.66     18.85          4.5            8.8
    Firefox       16.27     17.12         50             74
    Edge          23.85     25.66         20.8           21.1
    Fuzzyfox     109.09    145.45        200            500
    Tor           16.63     17.81        500            600
    Chrome Zero   15.71     21.63         12.8            8.1
    JSKernel      10        10             1              1

Shape targets: low < high and google < youtube everywhere except
JSKernel, whose cells are pinned to exactly 10/10 and 1/1 by the
deterministic schedule.
"""

from conftest import engine_kwargs, scale

from repro.analysis.tables import render_table
from repro.harness import table2_svg_loopscan
from repro.harness.perf import TABLE2_DEFENSES

RUNS = scale(3, 25)


def test_table2(once):
    table = once(table2_svg_loopscan, defenses=TABLE2_DEFENSES, runs=RUNS,
                 **engine_kwargs())
    rows = [
        [d, v["svg_low_ms"], v["svg_high_ms"], v["loopscan_google_ms"], v["loopscan_youtube_ms"]]
        for d, v in table.items()
    ]
    print()
    print(render_table(
        ["defense", "svg low ms", "svg high ms", "loops google ms", "loops youtube ms"],
        rows, title="=== Table II (measured) ===",
    ))

    kernel = table["jskernel"]
    assert kernel["svg_low_ms"] == kernel["svg_high_ms"] == 10.0  # paper: 10/10
    assert kernel["loopscan_google_ms"] == kernel["loopscan_youtube_ms"] == 1.0  # paper: 1/1

    for defense, values in table.items():
        if defense == "jskernel":
            continue
        assert values["svg_high_ms"] > values["svg_low_ms"], defense
        assert values["loopscan_youtube_ms"] > values["loopscan_google_ms"], defense

    # the paper's near-exact cells on legacy Chrome
    chrome = table["legacy-chrome"]
    assert abs(chrome["svg_low_ms"] - 16.66) < 1.0
    assert abs(chrome["loopscan_google_ms"] - 4.5) < 1.5
    assert abs(chrome["loopscan_youtube_ms"] - 8.8) < 2.0
