"""§V-B1 — API-specific compatibility on 20 CodePen-style apps.

Paper: "Fuzzyfox executes 13 apps out of 20 apps with observable
differences, DeterFox 7 out of 20, and JSKernel 4 out of 20. All the
differences in JSKernel are either a higher or lower FPS [or timing]
caused by the usage of the synchronous timer performance.now."
"""

from repro.harness import api_compat_counts
from repro.workloads import compat_survey


def test_api_compat(once):
    counts = once(api_compat_counts)
    print()
    print("=== Apps (of 20) with observable differences ===")
    for config, count in counts.items():
        print(f"  {config:10s}: {count:2d}/20")
    print("  (paper: jskernel 4, deterfox 7, fuzzyfox 13)")

    # all JSKernel differences must be timing-only (the paper's claim)
    survey = compat_survey("jskernel")
    for app, differences in survey.items():
        for field in differences:
            assert field.startswith("timing:"), (
                f"JSKernel broke a functional field: {app} {field}"
            )

    # every defense stays usable on a clear majority of apps
    assert all(count <= 10 for count in counts.values())
    # and JSKernel does not break more apps than half the suite
    assert counts["jskernel"] <= 8
