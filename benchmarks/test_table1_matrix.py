"""Table I — robustness of defenses against all 22 web concurrency attacks.

Paper claim: JSKernel defends every row; legacy browsers defend none;
Fuzzyfox only clock-edge; DeterFox the determinism rows; Chrome Zero
clock-edge plus the worker-lifecycle CVEs (via its polyfill).
"""

from conftest import engine_kwargs

from repro.harness import run_table1


def test_table1_full_matrix(once):
    result = once(run_table1, **engine_kwargs())
    assert result.errors == []
    print()
    print("=== Table I (+: defense prevents the attack, x: vulnerable) ===")
    print(result.render())
    print(f"agreement with the paper's (reconstructed) matrix: {result.agreement():.2%}")
    if result.disagreements():
        print("disagreements:", result.disagreements())

    # the reproduction target: full agreement with the reconstruction
    assert result.agreement() == 1.0

    # spot-check the paper's headline claims directly
    assert all(result.matrix[a]["jskernel"] for a in result.matrix)
    assert not any(result.matrix[a]["legacy-chrome"] for a in result.matrix)
    assert result.matrix["clock-edge"]["fuzzyfox"]
    assert result.matrix["script-parsing"]["deterfox"]
    assert not result.matrix["loopscan"]["deterfox"]
    assert result.matrix["cve-2018-5092"]["chromezero"]
    assert not result.matrix["cve-2015-7215"]["chromezero"]
