"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it in a paper-comparable shape (run with ``-s`` to see the tables;
EXPERIMENTS.md records a reference run).

Sizes default to a medium scale that completes in seconds; set
``REPRO_BENCH_FULL=1`` for the paper-scale runs (Alexa 500 sites, 25
raptor repetitions, ...).
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def scale(medium, full):
    """Pick a workload size based on REPRO_BENCH_FULL."""
    return full if FULL else medium


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
