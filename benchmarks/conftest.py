"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it in a paper-comparable shape (run with ``-s`` to see the tables;
EXPERIMENTS.md records a reference run).

Sizes default to a medium scale that completes in seconds; set
``REPRO_BENCH_FULL=1`` for the paper-scale runs (Alexa 500 sites, 25
raptor repetitions, ...).  The parallel engine is reachable here too:

* ``REPRO_BENCH_PARALLEL=N``  — shard experiment cells over N worker
  processes (results are byte-identical to serial, so every shape
  assertion holds either way);
* ``REPRO_BENCH_CACHE_DIR=D`` — reuse already-computed cells from the
  content-addressed result cache rooted at ``D``.

Environment variables are read lazily at call time, never into a
module-level constant, so setting them programmatically (from a wrapper
script, another test, or a late ``os.environ`` assignment) takes effect
regardless of import order.
"""

import os

import pytest


def scale(medium, full):
    """Pick a workload size based on REPRO_BENCH_FULL (read lazily)."""
    return full if os.environ.get("REPRO_BENCH_FULL", "") == "1" else medium


def engine_kwargs():
    """``parallel=``/``cache=`` harness kwargs from the environment."""
    raw = os.environ.get("REPRO_BENCH_PARALLEL", "") or "0"
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_PARALLEL must be an integer, got {raw!r}") from exc
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR", "")
    return {"parallel": workers or None, "cache": cache_dir or None}


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
