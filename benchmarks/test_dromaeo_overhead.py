"""§V-A1 — Dromaeo micro-benchmark overhead of JSKernel on Chrome.

Paper: 1.99% average, 0.30% median, worst case the DOM Attribute test at
21.15% ("this test needs to traverse through the kernel and the website
JavaScript for many times").
"""

from repro.analysis.tables import render_table
from repro.harness import dromaeo_overhead


def test_dromaeo(once):
    report = once(dromaeo_overhead)
    rows = [[name, f"{pct:+.2f}%"] for name, pct in report["per_test"].items()]
    print()
    print(render_table(
        ["test", "overhead"], rows, title="=== Dromaeo overhead (JSKernel on Chrome) ==="
    ))
    print(f"average {report['average_pct']:+.2f}%  median {report['median_pct']:+.2f}%  "
          f"worst {report['worst_test']} {report['worst_pct']:+.2f}%  "
          f"(paper: avg +1.99%, median +0.30%, worst dom-attr +21.15%)")

    # shape: median near zero, average low single digits, one boundary-
    # crossing test dominating
    assert report["median_pct"] < 2.0
    assert report["average_pct"] < 10.0
    assert report["worst_pct"] > 5.0
    assert report["per_test"]["math-cordic"] < 0.5  # pure compute is free
