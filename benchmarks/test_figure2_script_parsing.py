"""Figure 2 — script-parsing attack: reported time vs file size.

Paper claim: "Except for JSKernel, the reported parsing time measured by
the callback of setTimeout increases for all other defenses when the
size of the file increases."
"""

from conftest import engine_kwargs, scale

from repro.analysis.tables import render_series
from repro.harness import figure2_script_parsing
from repro.harness.perf import FIGURE2_DEFENSES


SIZES = [int(mb * 1024 * 1024) for mb in scale((2, 6, 10), (2, 4, 6, 8, 10))]


def test_figure2_series(once):
    series = once(figure2_script_parsing, sizes=SIZES, defenses=FIGURE2_DEFENSES,
                  **engine_kwargs())
    print()
    print(render_series(series, title="=== Figure 2: reported time (ms) vs size (MB) ==="))

    for defense, points in series.items():
        values = [y for _x, y in points]
        if defense == "jskernel":
            # flat line: the count is fixed by deterministic scheduling
            assert len(set(values)) == 1, f"jskernel not flat: {values}"
        else:
            # strictly increasing with size
            assert all(b > a for a, b in zip(values, values[1:])), (defense, values)
