"""Integration tests for the experiment harnesses (small configurations)."""

from repro.attacks.expected import expected_matrix
from repro.harness import (
    LAUNCH_BUG_REGRESSIONS,
    dom_similarity_survey,
    figure2_script_parsing,
    run_table1,
    table2_svg_loopscan,
    week_long_user_test,
)
from repro.harness.perf import figure3_cdf


def test_run_table1_subset_matches_expected():
    result = run_table1(
        attacks=["cve-2018-5092", "css-animation"],
        defenses=["legacy-chrome", "jskernel"],
    )
    assert result.agreement() == 1.0
    assert result.disagreements() == []
    rendered = result.render()
    assert "cve-2018-5092" in rendered and "jskernel" in rendered


def test_expected_matrix_shape():
    matrix = expected_matrix()
    assert len(matrix) == 22
    for row in matrix.values():
        assert len(row) == 8
    assert all(matrix[a]["jskernel"] for a in matrix)
    assert not any(matrix[a]["legacy-chrome"] for a in matrix)


def test_figure2_small_sweep_shapes():
    series = figure2_script_parsing(
        sizes=[1 * 1024 * 1024, 4 * 1024 * 1024],
        defenses=["legacy-chrome", "jskernel"],
    )
    chrome_points = series["legacy-chrome"]
    kernel_points = series["jskernel"]
    # legacy: reported time grows with size; kernel: flat
    assert chrome_points[1][1] > chrome_points[0][1] * 1.5
    assert kernel_points[0][1] == kernel_points[1][1]


def test_table2_small_run_shapes():
    table = table2_svg_loopscan(defenses=["legacy-chrome", "jskernel"], runs=2)
    chrome = table["legacy-chrome"]
    kernel = table["jskernel"]
    assert chrome["svg_high_ms"] > chrome["svg_low_ms"]
    assert kernel["svg_low_ms"] == kernel["svg_high_ms"] == 10.0
    assert kernel["loopscan_google_ms"] == kernel["loopscan_youtube_ms"] == 1.0
    assert chrome["loopscan_youtube_ms"] > chrome["loopscan_google_ms"]


def test_figure3_small_cdf_ordering():
    series = figure3_cdf(site_count=4, visits=1,
                         configs=["legacy-chrome", "jskernel", "tor"])
    from repro.analysis.stats import median

    chrome = median(series["legacy-chrome"])
    kernel = median(series["jskernel"])
    tor = median(series["tor"])
    assert abs(kernel - chrome) / chrome < 0.10  # JSKernel hugs Chrome
    assert tor > 2 * chrome  # Tor is way out right


def test_dom_similarity_small_survey():
    survey = dom_similarity_survey(site_count=6, seed=3)
    assert 0.0 <= survey["fraction_above"] <= 1.0
    # every site below the bar must be explained by dynamic content
    assert survey["below_explained_by_dynamic_content"] == len(survey["below_hosts"])


def test_week_long_user_test_short_run_is_clean():
    result = week_long_user_test(days=1, seed=2)
    assert result["days"] == 1
    assert result["issues"] == []


def test_launch_bug_regressions_green_under_kernel():
    from repro.defenses import make_browser

    for name, regression in LAUNCH_BUG_REGRESSIONS.items():
        browser = make_browser("jskernel", with_bugs=False, seed=4)
        page = browser.open_page("https://webapp.example/")
        assert regression(browser, page), f"launch-bug regression {name} failed"
