"""The defense × attack cube: overhead profiles, divergence, fixture."""

import json
import os

import pytest

from repro.harness.cube import (
    CUBE_PAIR,
    CubeResult,
    overhead_profile,
    run_cube,
    run_cube_cell,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "golden", "cube_expected.json")


def load_fixture() -> dict:
    with open(FIXTURE, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# overhead profiles
# ----------------------------------------------------------------------
def test_overhead_profile_merges_histograms_into_a_cdf():
    snapshot = {
        "histograms": {
            "eventloop.queue_delay_ns.main": {
                "bounds": [1000, 10_000],
                "counts": [2, 1, 1],
                "sum": 30_000,
                "count": 4,
            },
            "eventloop.queue_delay_ns.worker-1": {
                "bounds": [1000, 10_000],
                "counts": [2, 0, 0],
                "sum": 400,
                "count": 2,
            },
        },
        "counters": {
            "eventloop.tasks.timer": 5,
            "eventloop.tasks.message": 2,
            "kernel.api_calls.setTimeout": 3,
            "unrelated.counter": 99,
        },
    }
    profile = overhead_profile(snapshot)
    delay = profile["queue_delay"]
    assert delay["count"] == 6
    assert delay["mean_ns"] == pytest.approx(30_400 / 6)
    assert delay["cdf"] == [
        {"le_ns": 1000, "fraction": pytest.approx(4 / 6)},
        {"le_ns": 10_000, "fraction": pytest.approx(5 / 6)},
        {"le_ns": None, "fraction": pytest.approx(1.0)},
    ]
    assert profile["tasks"] == 7
    assert profile["kernel_api_calls"] == 3
    assert "kernel_confirm" not in profile  # no kernel histograms present


def test_run_cube_cell_carries_verdict_and_overhead():
    cell = run_cube_cell("clock-edge", "jskernel", seed=0)
    assert cell["defended"] is True
    assert cell["overhead"]["queue_delay"]["count"] > 0
    assert cell["overhead"]["tasks"] > 0


# ----------------------------------------------------------------------
# divergence logic (synthetic)
# ----------------------------------------------------------------------
def synthetic_result() -> CubeResult:
    result = CubeResult(
        attacks=["a1", "a2", "a3"],
        defenses=["jskernel", "detbrowser"],
        seed=0,
    )
    result.verdicts = {
        "a1": {"jskernel": True, "detbrowser": False},  # verdict divergence
        "a2": {"jskernel": True, "detbrowser": True},  # overhead divergence
        "a3": {"jskernel": True, "detbrowser": True},  # agreement
    }
    delay = lambda mean: {"queue_delay": {"count": 1, "mean_ns": mean, "cdf": []}}
    result.overhead = {
        "a1": {"jskernel": delay(100.0), "detbrowser": delay(100.0)},
        "a2": {"jskernel": delay(1000.0), "detbrowser": delay(100.0)},
        "a3": {"jskernel": delay(150.0), "detbrowser": delay(100.0)},
    }
    return result


def test_divergent_cells_orders_verdicts_before_overhead():
    divergent = synthetic_result().divergent_cells()
    assert [cell["kind"] for cell in divergent] == ["verdict", "overhead"]
    assert divergent[0] == {
        "attack": "a1",
        "kind": "verdict",
        "jskernel": True,
        "detbrowser": False,
    }
    assert divergent[1]["attack"] == "a2"
    assert divergent[1]["ratio"] == 10.0


def test_divergence_requires_both_defended_for_overhead():
    result = synthetic_result()
    result.verdicts["a2"]["detbrowser"] = False
    kinds = [(cell["attack"], cell["kind"]) for cell in result.divergent_cells()]
    assert ("a2", "overhead") not in kinds
    assert ("a2", "verdict") in kinds


def test_render_mentions_divergent_cells():
    text = synthetic_result().render()
    assert "divergent cells (jskernel vs detbrowser):" in text
    assert "VULNERABLE" in text
    assert "x10.0" in text


# ----------------------------------------------------------------------
# the real cube vs the committed fixture
# ----------------------------------------------------------------------
def test_fixture_pins_a_verdict_divergent_cell():
    fixture = load_fixture()
    assert fixture["pair"] == list(CUBE_PAIR)
    divergent = [c for c in fixture["divergent"] if c["kind"] == "verdict"]
    assert divergent, "fixture must pin at least one jskernel/detbrowser divergence"
    assert any(c["attack"] == "cve-2018-5092" for c in divergent)


def test_cube_reproduces_the_fixture_divergence():
    fixture = load_fixture()
    result = run_cube(
        attacks=["cve-2018-5092"],
        defenses=["jskernel", "detbrowser"],
        seed=fixture["seed"],
        cache=None,
    )
    assert result.errors == []
    row = result.verdicts["cve-2018-5092"]
    expected_row = fixture["verdicts"]["cve-2018-5092"]
    assert row["jskernel"] == expected_row["jskernel"] is True
    assert row["detbrowser"] == expected_row["detbrowser"] is False
    divergent = result.divergent_cells()
    assert {"attack": "cve-2018-5092", "kind": "verdict",
            "jskernel": True, "detbrowser": False} in divergent
    # every cell carries an overhead CDF
    for defense in ("jskernel", "detbrowser"):
        assert result.overhead["cve-2018-5092"][defense]["queue_delay"]["cdf"]


def test_cube_json_round_trips():
    result = run_cube(attacks=["clock-edge"], defenses=["jskernel"], cache=None)
    payload = result.to_json()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["verdicts"] == {"clock-edge": {"jskernel": True}}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_rejects_unknown_defense():
    from repro.__main__ import main

    with pytest.raises(SystemExit) as err:
        main(["cube", "--defenses", "analyze", "--no-cache"])
    assert err.value.code == 2


def test_cli_rejects_unknown_attack():
    from repro.__main__ import main

    with pytest.raises(SystemExit) as err:
        main(["cube", "--attacks", "bogus-attack", "--no-cache"])
    assert err.value.code == 2


def test_cli_json_output(capsys):
    from repro.__main__ import main

    code = main(
        ["cube", "--attacks", "clock-edge", "--defenses", "legacy-chrome",
         "--json", "--no-cache"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verdicts"] == {"clock-edge": {"legacy-chrome": False}}


def test_cli_accepts_extension_attacks():
    from repro.__main__ import main

    code = main(
        ["cube", "--attacks", "sab-timer", "--defenses", "detbrowser",
         "--json", "--no-cache"]
    )
    assert code == 0
