"""Smoke tests for the core microbenchmark suite and its regression gate.

The suite itself runs in CI at full scale; here it runs at a tiny scale
to pin the report schema, the determinism of the workloads, and the
``check_regression`` comparison logic (which CI trusts to fail the
build).
"""

import copy

import pytest

from repro.harness.bench_core import (
    DEFAULT_EVENTS,
    REFERENCE_WORKLOADS,
    WORKLOADS,
    check_regression,
    format_report,
    run_bench_core,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_bench_core(scale=0.01, repeats=2)


def test_report_schema(tiny_report):
    assert tiny_report["schema"] == 2
    benchmarks = tiny_report["benchmarks"]
    for name in WORKLOADS:
        assert name in benchmarks, name
        stats = benchmarks[name]
        assert stats["events"] > 0
        assert stats["events_per_sec"] > 0
        assert stats["p50_ns_per_event"] <= stats["p95_ns_per_event"]
    for name in REFERENCE_WORKLOADS:
        assert f"{name}-reference" in benchmarks
        assert name in tiny_report["speedups_vs_seed_reference"]
    traced = tiny_report["traced_overhead"]
    assert traced["overhead_ratio"] > 0


def test_workloads_are_deterministic():
    """Same seed, same schedule: event counts must match across runs."""
    a = run_bench_core(scale=0.01, repeats=1, only=["timer-storm"])
    b = run_bench_core(scale=0.01, repeats=1, only=["timer-storm"])
    assert (
        a["benchmarks"]["timer-storm"]["events"]
        == b["benchmarks"]["timer-storm"]["events"]
    )


def test_only_filter_and_unknown_name():
    report = run_bench_core(scale=0.01, repeats=1, only=["raw-dispatch"])
    assert set(report["benchmarks"]) == {"raw-dispatch", "raw-dispatch-reference"}
    with pytest.raises(ValueError, match="unknown benchmarks"):
        run_bench_core(scale=0.01, repeats=1, only=["no-such-bench"])


def test_timed_lane_cases_run_against_the_seed_reference():
    """The ISSUE's acceptance cases: the wheel storm and the pre-compiled
    chain both measure against the frozen seed implementations."""
    report = run_bench_core(scale=0.01, repeats=1, only=["wheel", "precompiled"])
    benchmarks = report["benchmarks"]
    assert set(benchmarks) == {
        "wheel", "wheel-reference", "precompiled", "precompiled-reference",
    }
    for name in ("wheel", "precompiled"):
        assert benchmarks[name]["events"] == benchmarks[f"{name}-reference"]["events"]
        assert report["speedups_vs_seed_reference"][name] > 0


def test_format_report_renders(tiny_report):
    text = format_report(tiny_report)
    assert "raw-dispatch" in text
    assert "speedup vs seed reference" in text


def test_default_events_cover_all_workloads():
    assert set(WORKLOADS) | {"traced-overhead"} == set(DEFAULT_EVENTS)


# ----------------------------------------------------------------------
# regression gate logic
# ----------------------------------------------------------------------

def _synthetic(live, ref):
    return {
        "benchmarks": {
            "raw-dispatch": {"events_per_sec": live},
            "raw-dispatch-reference": {"events_per_sec": ref},
        }
    }


def test_check_regression_passes_on_equal_normalised():
    baseline = _synthetic(3_000_000, 1_000_000)
    # twice as fast a machine, same 3x normalised ratio: no failure
    report = _synthetic(6_000_000, 2_000_000)
    assert check_regression(report, baseline) == []


def test_check_regression_fails_past_tolerance():
    baseline = _synthetic(3_000_000, 1_000_000)
    # normalised throughput halved (3x -> 1.5x): well past 20%
    report = _synthetic(1_500_000, 1_000_000)
    failures = check_regression(report, baseline)
    assert len(failures) == 1
    assert "raw-dispatch" in failures[0]
    assert "refresh" in failures[0]


def test_check_regression_within_tolerance_passes():
    baseline = _synthetic(3_000_000, 1_000_000)
    report = _synthetic(2_600_000, 1_000_000)  # ~13% down: inside 20%
    assert check_regression(report, baseline) == []


def test_check_regression_falls_back_to_raw_ratio():
    baseline = {"benchmarks": {"dispatch-chain": {"events_per_sec": 1_000_000}}}
    report = {"benchmarks": {"dispatch-chain": {"events_per_sec": 700_000}}}
    failures = check_regression(report, baseline)
    assert len(failures) == 1 and "raw" in failures[0]


def test_check_regression_ignores_missing_benchmarks(tiny_report):
    baseline = copy.deepcopy(tiny_report)
    baseline["benchmarks"]["retired-bench"] = {"events_per_sec": 1.0}
    assert check_regression(tiny_report, baseline) == []


# ----------------------------------------------------------------------
# compiled build lane (tools/build_compiled.py)
# ----------------------------------------------------------------------

def test_build_compiled_lane_runs_or_skips_gracefully(tmp_path):
    """The optional AOT lane must exit 0 everywhere: either it built and
    benched the extension, or it recorded exactly why it skipped."""
    import json
    import os
    import subprocess
    import sys

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out = tmp_path / "bench_compiled.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(repo, "src"))
    result = subprocess.run(
        [
            sys.executable,
            os.path.join(repo, "tools", "build_compiled.py"),
            "--quick",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert report["module"] == "repro.runtime.wheel"
    if report["status"] == "ok":
        assert report["speedup"] > 0
        assert report["toolchain"] in ("mypyc", "Cython")
    else:
        assert report["status"] == "skipped"
        assert report["reason"]
