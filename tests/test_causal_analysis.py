"""Tests for the causal analysis layer (:mod:`repro.analysis`).

Covers the happens-before graph builder, the race detector (the
acceptance pair: ≥ 1 race under the baseline CVE scenario, 0 under
JSKernel), the determinism auditor (divergence 0 under the general policy
across ≥ 3 seeds, > 0 under baseline), the critical-path profiler, the
harness property hook, the kernel queue-depth counter and the ``analyze``
CLI surface.
"""

import json

import pytest

from repro.__main__ import main
from repro.analysis.critpath import profile_scenario
from repro.analysis.determinism import audit_scenario, schedule_divergence
from repro.analysis.hbgraph import build_hb_graph
from repro.analysis.races import analyze_scenario, detect_races
from repro.analysis.scenario import run_traced_scenario
from repro.harness import run_table1

AUDIT_SEEDS = (0, 1, 2)


# ----------------------------------------------------------------------
# happens-before graph construction
# ----------------------------------------------------------------------
def _instant(pid, thread, name, ts, **args):
    return {"ph": "i", "s": "t", "pid": pid, "thread": thread, "name": name,
            "cat": "", "ts": ts, "args": args}


def test_program_order_chains_events_on_one_thread():
    events = [
        _instant(1, "main", "a", 0),
        _instant(1, "main", "b", 10),
        _instant(1, "worker", "c", 5),
    ]
    graph = build_hb_graph(events)
    assert graph.happens_before(0, 1)
    assert not graph.happens_before(0, 2)  # different threads, no edge
    assert not graph.ordered(1, 2)


def test_flow_edges_order_cross_thread_pairs_transitively():
    events = [
        _instant(1, "main", "postMessage", 0, flow=7),
        _instant(1, "worker", "message.receive", 40, flow=7),
        _instant(1, "worker", "later", 50),
    ]
    graph = build_hb_graph(events)
    assert graph.happens_before(0, 1)  # the flow edge itself
    assert graph.happens_before(0, 2)  # via worker program order


def test_worker_terminate_joins_only_the_terminating_context():
    # the worker row runs a task at an earlier virtual time that Python
    # executes *after* the terminate call — chaining terminate onto the
    # worker row would order them falsely
    events = [
        _instant(1, "worker-1", "worker.terminate", 100, ctx="main"),
        _instant(1, "worker-1", "state.access", 50, obj="x", op="write", kind="sab"),
        _instant(1, "main", "after", 120),
    ]
    graph = build_hb_graph(events)
    assert not graph.ordered(0, 1)  # terminate does not order the worker row
    assert graph.happens_before(0, 2)  # but it does order within ctx=main


def test_kernel_span_legs_chain_by_span_id():
    events = [
        {"ph": "b", "pid": 1, "thread": "kernel:main", "name": "kevent:timeout",
         "cat": "kernel-event", "id": 3, "ts": 0, "args": {"ctx": "main"}},
        {"ph": "e", "pid": 1, "thread": "kernel:main", "name": "kevent:timeout",
         "cat": "kernel-event", "id": 3, "ts": 90, "args": {"ctx": "main"}},
        _instant(1, "main", "unrelated", 10),
    ]
    graph = build_hb_graph(events)
    assert graph.happens_before(0, 1)


# ----------------------------------------------------------------------
# race detection — the acceptance pair
# ----------------------------------------------------------------------
def test_baseline_cve_scenario_has_a_use_after_free_race():
    report = analyze_scenario("cve-2018-5092", "legacy-chrome", seed=0)
    assert report["race_count"] >= 1
    patterns = {
        race["pattern"] for run in report["runs"] for race in run["races"]
    }
    assert "use-after-free" in patterns
    # the racing pair is the teardown free against the abort-path deref
    (race,) = [r for run in report["runs"] for r in run["races"]]
    assert {race["first"]["access"], race["second"]["access"]} == {"free", "deref"}
    assert race["first"]["thread"] != race["second"]["thread"]


def test_jskernel_orders_the_same_scenario_race_free():
    report = analyze_scenario("cve-2018-5092", "jskernel", seed=0)
    assert report["race_count"] == 0
    # not vacuous: the traced runs do perform shared-state accesses
    assert sum(run["shared_accesses"] for run in report["runs"]) > 0


def test_detect_races_ignores_same_thread_and_read_read_pairs():
    events = [
        _instant(1, "main", "state.access", 0, obj="o", op="write", kind="sab"),
        _instant(1, "main", "state.access", 10, obj="o", op="write", kind="sab"),
        _instant(1, "worker", "state.access", 5, obj="o", op="read", kind="sab"),
        _instant(1, "viewer", "state.access", 6, obj="o", op="read", kind="sab"),
    ]
    graph = build_hb_graph(events)
    races = detect_races(graph)
    # the same-thread write/write pair and the cross-thread read/read pair
    # never race; each of the 2 writes races each of the 2 reads
    assert len(races) == 4
    assert all(r.pattern == "read-write" for r in races)
    assert all({r.first.thread, r.second.thread} != {"worker", "viewer"} for r in races)


# ----------------------------------------------------------------------
# determinism audit — the acceptance pair
# ----------------------------------------------------------------------
def test_jskernel_schedule_is_seed_independent():
    report = audit_scenario("cache-attack", "jskernel", seeds=AUDIT_SEEDS)
    assert report["deterministic"]
    assert report["divergence"] == 0
    assert report["first_divergence"] is None
    assert report["schedule_length"] > 0  # not vacuously empty


def test_baseline_schedule_diverges_across_seeds():
    report = audit_scenario("cache-attack", "legacy-chrome", seeds=AUDIT_SEEDS)
    assert not report["deterministic"]
    assert report["divergence"] > 0
    first = report["first_divergence"]
    assert first is not None and first["row"]


def test_schedule_divergence_counts_positional_disagreements():
    a = {"main": [("x", 1), ("y", 2)]}
    b = {"main": [("x", 1), ("y", 3), ("z", 4)]}
    score, first = schedule_divergence(a, b)
    assert score == 2
    assert first == {"row": "main", "position": 1, "a": ("y", 2), "b": ("y", 3)}
    assert schedule_divergence(a, a) == (0, None)


def test_audit_rejects_a_single_seed():
    with pytest.raises(ValueError):
        audit_scenario("cache-attack", "jskernel", seeds=(0,))


# ----------------------------------------------------------------------
# critical-path profiling
# ----------------------------------------------------------------------
def test_critpath_buckets_sum_exactly_to_total():
    report = profile_scenario("cve-2018-5092", "jskernel", seed=0)
    assert report["runs"]
    for run in report["runs"]:
        assert run["total_ns"] > 0
        parts = run["exec_ns"] + run["queue_ns"] + run["kernel_ns"] + run["wait_ns"]
        assert parts == run["total_ns"]
        assert run["path_events"] == len(run["steps"])


def test_critpath_under_jskernel_attributes_kernel_overhead():
    report = profile_scenario("cve-2018-5092", "jskernel", seed=0)
    assert any(run["kernel_ns"] > 0 for run in report["runs"])


# ----------------------------------------------------------------------
# harness property
# ----------------------------------------------------------------------
def test_matrix_run_can_assert_determinism_as_a_property():
    result = run_table1(
        attacks=["cve-2018-5092"],
        defenses=["legacy-chrome", "jskernel"],
        determinism_seeds=(0, 1),
    )
    assert result.determinism is not None
    assert result.determinism["cve-2018-5092"]["jskernel"]["divergence"] == 0
    # only determinism-promising defenses are held to divergence 0
    assert result.determinism_violations() == []


def test_matrix_without_audit_reports_no_violations():
    result = run_table1(attacks=["cve-2018-5092"], defenses=["jskernel"])
    assert result.determinism is None
    assert result.determinism_violations() == []


# ----------------------------------------------------------------------
# kernel queue depth counter (satellite)
# ----------------------------------------------------------------------
def test_kernel_queue_depth_counter_is_emitted():
    tracer, _outcome = run_traced_scenario("cve-2018-5092", "jskernel", seed=0)
    samples = [e for e in tracer.events if e["name"] == "kernel.queue_depth"]
    assert samples
    assert all(e["ph"] == "C" for e in samples)
    depths = [e["args"]["depth"] for e in samples]
    assert max(depths) >= 1  # events were queued...
    assert depths[-1] == 0  # ...and drained by the end of the run
    # consecutive samples on one row always show a changed depth
    by_row = {}
    for event in samples:
        by_row.setdefault(event["thread"], []).append(event["args"]["depth"])
    for row_depths in by_row.values():
        assert all(a != b for a, b in zip(row_depths, row_depths[1:]))
    snap = tracer.metrics.snapshot()
    assert any(name.startswith("kernel.queue.depth.") for name in snap["gauges"])


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_analyze_races_emits_valid_json(capsys):
    assert main(["analyze", "races", "cve-2018-5092",
                 "--defense", "legacy-chrome", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["race_count"] >= 1
    assert report["scenario"] == "cve-2018-5092"


def test_cli_rejects_unknown_attack_with_clear_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["analyze", "races", "no-such-attack"])
    assert excinfo.value.code == 2
    assert "unknown attack" in capsys.readouterr().err


def test_cli_rejects_unknown_defense_with_clear_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["analyze", "races", "cve-2018-5092", "--defense", "nope"])
    assert excinfo.value.code == 2
    assert "unknown defense" in capsys.readouterr().err


def test_cli_trace_attack_validates_names(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "attack", "no-such-attack"])
    assert excinfo.value.code == 2
    assert "unknown attack" in capsys.readouterr().err


def test_cli_rejects_unknown_analyze_mode(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["analyze", "frobnicate", "cve-2018-5092"])
    assert excinfo.value.code == 2
    assert "unknown analyze mode" in capsys.readouterr().err


def test_cli_analyze_writes_report_file(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main(["analyze", "critpath", "cve-2018-5092", "--out", str(out)]) == 0
    capsys.readouterr()
    report = json.loads(out.read_text())
    assert report["runs"] and report["runs"][0]["total_ns"] > 0
