"""Unit tests for CSS animations, the video clock and indexedDB."""

import pytest

from repro.errors import SecurityError
from repro.runtime.clock import PerformanceClock
from repro.runtime.cssanim import AnimationTimeline
from repro.runtime.dom import Document
from repro.runtime.eventloop import EventLoop
from repro.runtime.media import VideoElement, WebVTTCue, make_cue_grid
from repro.runtime.origin import Origin
from repro.runtime.simtime import ms
from repro.runtime.simulator import ExecutionFrame, Simulator
from repro.runtime.storage import IndexedDBStore


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def timeline(sim):
    return AnimationTimeline(PerformanceClock(sim))


def in_frame(sim, start_ns):
    frame = ExecutionFrame(start_ns, "t")
    sim.push_frame(frame)
    return frame


# ----------------------------------------------------------------------
# CSS animations
# ----------------------------------------------------------------------

def test_animation_progress_interpolates(sim, timeline):
    doc = Document(sim)
    el = doc.body.append_child(doc.create_element("div"))
    in_frame(sim, 0)
    animation = timeline.animate(el, "left", 0.0, 100.0, duration_ms=1000.0)
    sim.pop_frame()
    in_frame(sim, ms(250))
    assert timeline.get_computed_style(el, "left") == pytest.approx(25.0, abs=0.5)
    sim.pop_frame()
    in_frame(sim, ms(2000))
    assert timeline.get_computed_style(el, "left") == 100.0
    assert animation.finished(2000.0)
    sim.pop_frame()


def test_cancelled_animation_returns_static_style(sim, timeline):
    doc = Document(sim)
    el = doc.body.append_child(doc.create_element("div"))
    el.set_style("left", "42px")
    in_frame(sim, 0)
    animation = timeline.animate(el, "left", 0.0, 100.0, 1000.0)
    timeline.cancel(animation)
    assert timeline.get_computed_style(el, "left") == 42.0
    sim.pop_frame()


def test_any_running_prunes_finished(sim, timeline):
    doc = Document(sim)
    el = doc.body.append_child(doc.create_element("div"))
    in_frame(sim, 0)
    timeline.animate(el, "left", 0.0, 1.0, duration_ms=10.0)
    assert timeline.any_running()
    sim.pop_frame()
    in_frame(sim, ms(50))
    assert not timeline.any_running()
    sim.pop_frame()


# ----------------------------------------------------------------------
# video / WebVTT
# ----------------------------------------------------------------------

def test_video_current_time_advances_only_while_playing(sim):
    loop = EventLoop(sim, "media-test", task_dispatch_cost=0)
    clock = PerformanceClock(sim)
    video = VideoElement(loop, clock, duration_ms=60_000)
    in_frame(sim, 0)
    assert video.current_time == 0.0
    video.play()
    sim.pop_frame()
    in_frame(sim, ms(500))
    assert video.current_time == pytest.approx(0.5, abs=0.01)
    video.pause()
    sim.pop_frame()
    in_frame(sim, ms(2000))
    assert video.current_time == pytest.approx(0.5, abs=0.01)
    sim.pop_frame()


def test_cue_fires_at_start_time(sim):
    loop = EventLoop(sim, "media-test", task_dispatch_cost=0)
    video = VideoElement(loop, PerformanceClock(sim))
    fired = []
    cue = WebVTTCue(30.0, 40.0)
    cue.on_enter = lambda c: fired.append(sim.dispatch_time)
    video.add_cue(cue)
    video.play()
    sim.run(until=ms(200))
    assert fired and fired[0] >= ms(30)


def test_cue_grid_shape():
    cues = make_cue_grid(10.0, 5)
    assert len(cues) == 5
    assert cues[3].start_ms == 30.0
    assert cues[3].end_ms == 40.0


# ----------------------------------------------------------------------
# indexedDB
# ----------------------------------------------------------------------

ORIGIN = Origin("https", "site.example")


def test_persistent_store_survives(sim):
    store = IndexedDBStore(sim)
    store.put(ORIGIN, "k", "v", private_mode=False)
    assert store.get(ORIGIN, "k", private_mode=False) == "v"
    assert store.persistent_size == 1


def test_private_mode_is_ephemeral_when_correct(sim):
    store = IndexedDBStore(sim, persist_private_writes=False)
    store.put(ORIGIN, "k", "v", private_mode=True)
    assert store.get(ORIGIN, "k", private_mode=True) == "v"
    store.end_private_session()
    assert store.get(ORIGIN, "k", private_mode=True) is None
    assert store.persistent_size == 0


def test_buggy_private_mode_persists(sim):
    store = IndexedDBStore(sim, persist_private_writes=True)
    store.put(ORIGIN, "k", "v", private_mode=True)
    store.end_private_session()
    assert store.get(ORIGIN, "k", private_mode=True) == "v"


def test_private_data_isolated_per_origin(sim):
    store = IndexedDBStore(sim)
    other = Origin("https", "other.example")
    store.put(ORIGIN, "k", "v", private_mode=False)
    assert store.get(other, "k", private_mode=False) is None


def test_policy_block_raises(sim):
    store = IndexedDBStore(sim)
    store.private_access_blocked = True
    with pytest.raises(SecurityError):
        store.put(ORIGIN, "k", "v", private_mode=True)
    with pytest.raises(SecurityError):
        store.get(ORIGIN, "k", private_mode=True)
    # non-private access unaffected
    store.put(ORIGIN, "k", "v", private_mode=False)
