"""Unit tests for the renderer and requestAnimationFrame."""

import pytest

from repro.runtime.dom import Document
from repro.runtime.eventloop import EventLoop
from repro.runtime.render import Renderer
from repro.runtime.simtime import FRAME_INTERVAL, ms
from repro.runtime.simulator import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    loop = EventLoop(sim, "render-test", task_dispatch_cost=0)
    doc = Document(sim)
    renderer = Renderer(loop, doc)
    return sim, loop, doc, renderer


def test_raf_fires_on_next_vsync(setup):
    sim, _loop, _doc, renderer = setup
    seen = []
    renderer.request_animation_frame(seen.append)
    sim.run(until=ms(100))
    assert len(seen) == 1
    assert renderer.frame_log[0][0] == FRAME_INTERVAL


def test_raf_chain_runs_at_frame_rate(setup):
    sim, _loop, _doc, renderer = setup
    timestamps = []

    def frame(ts):
        timestamps.append(ts)
        if len(timestamps) < 4:
            renderer.request_animation_frame(frame)

    renderer.request_animation_frame(frame)
    sim.run(until=ms(200))
    deltas = [timestamps[i + 1] - timestamps[i] for i in range(3)]
    for delta in deltas:
        assert delta == pytest.approx(FRAME_INTERVAL / 1e6, rel=0.01)


def test_cancel_animation_frame(setup):
    sim, _loop, _doc, renderer = setup
    seen = []
    raf_id = renderer.request_animation_frame(seen.append)
    renderer.cancel_animation_frame(raf_id)
    sim.run(until=ms(100))
    assert seen == []


def test_no_work_means_no_frames(setup):
    sim, _loop, doc, renderer = setup
    doc.dirty = False
    sim.run(until=ms(100))
    assert renderer.frames_rendered == 0


def test_dirty_document_produces_one_frame(setup):
    sim, _loop, doc, renderer = setup
    doc.mark_dirty()
    renderer.pump()
    sim.run(until=ms(100))
    assert renderer.frames_rendered == 1
    assert not doc.dirty


def test_heavy_paint_delays_next_frame(setup):
    sim, _loop, doc, renderer = setup
    element = doc.body.append_child(doc.create_element("canvas"))
    timestamps = []

    def frame(ts):
        timestamps.append(ts)
        if len(timestamps) == 1:
            element.pending_paint_cost = ms(30)  # blows the frame budget
            doc.mark_dirty()
        if len(timestamps) < 3:
            renderer.request_animation_frame(frame)

    renderer.request_animation_frame(frame)
    sim.run(until=ms(300))
    # the 30ms paint lands in frame 1, pushing frame 2 well past a vsync
    assert timestamps[1] - timestamps[0] > 25.0


def test_pending_paint_cost_consumed_once(setup):
    sim, _loop, doc, renderer = setup
    element = doc.body.append_child(doc.create_element("canvas"))
    element.pending_paint_cost = ms(5)
    doc.mark_dirty()
    renderer.pump()
    sim.run(until=ms(100))
    assert element.pending_paint_cost == 0


def test_visited_links_increase_style_cost(setup):
    sim, loop, doc, renderer = setup
    renderer.visited_fn = lambda href: href == "https://visited.example/"
    for href in ("https://visited.example/", "https://other.example/"):
        link = doc.body.append_child(doc.create_element("a"))
        link.attributes["href"] = href
    doc.mark_dirty()
    renderer.pump()
    sim.run(until=ms(100))
    visited_flags = [el.matched_visited for el in doc.get_elements_by_tag("a")]
    assert visited_flags == [True, False]


def test_animation_driver_keeps_frames_coming(setup):
    sim, _loop, doc, renderer = setup
    doc.dirty = False

    def driver():
        return renderer.frames_rendered < 3

    renderer.animation_drivers.append(driver)
    renderer.pump()
    sim.run(until=ms(200))
    assert renderer.frames_rendered >= 2
