"""Unit tests for the simulated network and HTTP cache."""

import random

import pytest

from repro.runtime.eventloop import EventLoop
from repro.runtime.network import Resource, SimNetwork
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator


@pytest.fixture
def net():
    sim = Simulator()
    loop = EventLoop(sim, "net-test", task_dispatch_cost=0)
    network = SimNetwork(random.Random(1), base_latency_ns=ms(8), jitter_ns=0,
                         bandwidth_bytes_per_ms=1_000)
    return sim, loop, network


URL = parse_url("https://cdn.example/lib.js")


def test_completion_includes_latency_and_transfer(net):
    sim, loop, network = net
    network.host_simple(URL, 10_000)  # 10 KB at 1 KB/ms = 10 ms
    done = {}
    network.request(loop, URL, lambda response: done.__setitem__("at", sim.dispatch_time))
    sim.run()
    assert done["at"] >= ms(18)


def test_missing_resource_is_404(net):
    sim, loop, network = net
    responses = []
    network.request(loop, parse_url("https://cdn.example/missing"), responses.append)
    sim.run()
    assert responses[0].status == 404
    assert not responses[0].ok


def test_cache_miss_then_hit(net):
    sim, loop, network = net
    network.host_simple(URL, 10_000)
    assert not network.is_cached(URL)
    times = []
    network.request(loop, URL, lambda r: times.append((sim.dispatch_time, r.from_cache)))
    sim.run()
    assert network.is_cached(URL)
    start = sim.dispatch_time
    network.request(loop, URL, lambda r: times.append((sim.dispatch_time - start, r.from_cache)))
    sim.run()
    assert times[0][1] is False
    assert times[1][1] is True
    assert times[1][0] < ms(1)  # cache hits are near-instant


def test_prime_and_flush_cache(net):
    _sim, _loop, network = net
    network.host_simple(URL, 100)
    network.prime_cache(URL)
    assert network.is_cached(URL)
    network.flush_cache(URL)
    assert not network.is_cached(URL)
    network.prime_cache(URL)
    network.flush_cache()
    assert not network.is_cached(URL)


def test_cancel_prevents_completion(net):
    sim, loop, network = net
    network.host_simple(URL, 100)
    responses = []
    request = network.request(loop, URL, responses.append)
    request.cancel()
    sim.run()
    assert responses == []
    assert request.cancelled


def test_cancel_after_completion_is_noop(net):
    sim, loop, network = net
    network.host_simple(URL, 100)
    responses = []
    request = network.request(loop, URL, responses.append)
    sim.run()
    request.cancel()
    assert responses and not request.cancelled


def test_redirect_resource_reports_final_url(net):
    sim, loop, network = net
    final = parse_url("https://other.example/landing")
    network.host(Resource(URL, 100, redirect_to=final))
    responses = []
    network.request(loop, URL, responses.append)
    sim.run()
    assert responses[0].final_url == final


def test_jitter_draws_from_seeded_rng():
    def run_with_seed(seed):
        network = SimNetwork(random.Random(seed), base_latency_ns=ms(8), jitter_ns=ms(4),
                             bandwidth_bytes_per_ms=1_000)
        network.host_simple(URL, 0)
        return network._completion_delay(URL, network.lookup(URL), use_cache=False)

    assert run_with_seed(1) == run_with_seed(1)


def test_transfer_time_scales_with_size(net):
    _sim, _loop, network = net
    assert network.transfer_time(2_000) == 2 * network.transfer_time(1_000)
