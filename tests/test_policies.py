"""Unit tests for the policy model and the built-in policies."""

import pytest

from repro.errors import PolicyError, SecurityError
from repro.kernel.policies import (
    DeterministicSchedulingPolicy,
    ErrorSanitizerPolicy,
    FuzzySchedulingPolicy,
    PrivateModeStoragePolicy,
    TransferNeuterPolicy,
    WorkerLifecyclePolicy,
    WorkerXhrOriginPolicy,
    all_cve_policies,
)
from repro.kernel.policy import CompositePolicy, Policy, SchedulingGrid
from repro.kernel.space import KernelSpace
from repro.runtime.eventloop import EventLoop
from repro.runtime.heap import SimHeap
from repro.runtime.origin import Origin, parse_url
from repro.runtime.sharedbuf import SimArrayBuffer
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator


def make_kspace(policy):
    sim = Simulator()
    loop = EventLoop(sim, "p", task_dispatch_cost=0)
    return KernelSpace(loop, policy, SchedulingGrid(), label="p")


def test_base_policy_is_passthrough():
    policy = Policy()
    assert policy.predict("timeout", None) is None
    assert policy.on_worker_terminate_request(None) is False
    assert policy.on_error_event(None, "msg", True) == "msg"
    assert policy.allow_storage_access(None) is True


def test_composite_requires_policies():
    with pytest.raises(PolicyError):
        CompositePolicy([])


def test_composite_predict_first_wins():
    class A(Policy):
        def predict(self, kind, kspace, hint=None):
            return 111

    class B(Policy):
        def predict(self, kind, kspace, hint=None):
            return 222

    composite = CompositePolicy([A(), B()])
    assert composite.predict("timeout", None) == 111


def test_composite_terminate_any_claims():
    composite = CompositePolicy([Policy(), WorkerLifecyclePolicy()])
    assert composite.on_worker_terminate_request(None) is True


def test_composite_error_filters_compose():
    composite = CompositePolicy([ErrorSanitizerPolicy(), Policy()])
    assert composite.on_error_event(None, "leak", True) == "Script error."
    assert composite.on_error_event(None, "fine", False) == "fine"


def test_composite_storage_all_must_allow():
    class Deny(Policy):
        def allow_storage_access(self, page):
            return False

    assert CompositePolicy([Policy(), Deny()]).allow_storage_access(None) is False


def test_composite_find_by_name():
    composite = CompositePolicy(all_cve_policies())
    assert composite.find("worker-lifecycle") is not None
    assert composite.find("nonexistent") is None


def test_deterministic_predictions_are_pure():
    policy = DeterministicSchedulingPolicy()
    kspace = make_kspace(CompositePolicy([policy]))
    a = policy.predict("raf", kspace)
    b = policy.predict("raf", kspace)
    assert a == b == ms(10)


def test_fuzzy_predictions_jitter_but_stay_monotone_per_grid():
    policy = FuzzySchedulingPolicy()
    kspace = make_kspace(CompositePolicy([policy]))
    values = {policy.predict("timeout", kspace, hint=ms(5)) for _ in range(20)}
    assert len(values) > 1  # jitter present
    assert all(v >= ms(5) for v in values)


def test_fuzzy_rejects_bad_fraction():
    with pytest.raises(ValueError):
        FuzzySchedulingPolicy(jitter_fraction=1.5)


def test_worker_xhr_origin_policy_vetoes_cross_origin():
    policy = WorkerXhrOriginPolicy()
    info = {
        "url": "https://victim.example/x",
        "origin": Origin("https", "app.example"),
        "base_url": parse_url("https://app.example/w.js"),
    }
    with pytest.raises(SecurityError):
        policy.on_api_call("worker.xhr.send", None, info)
    # same-origin passes
    info["url"] = "/same"
    policy.on_api_call("worker.xhr.send", None, info)
    # other APIs ignored
    policy.on_api_call("fetch", None, {})


def test_transfer_neuter_policy_detaches():
    policy = TransferNeuterPolicy()
    buffer = SimArrayBuffer(SimHeap(), 16)
    policy.on_worker_message(None, "to_worker_transfer", [buffer])
    assert buffer.detached
    # other directions untouched
    other = SimArrayBuffer(SimHeap(), 16)
    policy.on_worker_message(None, "to_parent", [other])
    assert not other.detached


def test_private_mode_storage_policy():
    policy = PrivateModeStoragePolicy()

    class FakePage:
        private_mode = True

    assert policy.allow_storage_access(FakePage()) is False
    FakePage.private_mode = False
    assert policy.allow_storage_access(FakePage()) is True


def test_all_cve_policies_cover_twelve_cves():
    covered = set()
    for policy in all_cve_policies():
        covered.update(policy.cves)
    assert len(covered) == 12


def test_scheduling_grid_defaults():
    grid = SchedulingGrid()
    assert grid.grid_for("message") == ms(1)
    assert grid.grid_for("raf") == ms(10)
    assert grid.grid_for("unknown-kind") == grid.grid_for("generic")
    assert grid.is_spaced("message")
    assert not grid.is_spaced("raf")
