"""Conformance suite for the pluggable defense-backend interface.

Every registered defense must be a :class:`DefenseBackend` whose
capability declarations match what its slots actually cover, whose
install is idempotent per browser, and whose install path never touches
the global ``random`` module (seeded streams only — the repo's
determinism contract).
"""

import random

import pytest

from repro.defenses import (
    CAPABILITIES,
    ClockSlot,
    DefenseBackend,
    available,
    create,
    make_browser,
)
from repro.errors import PolicyError, UnknownDefenseError
from repro.runtime import Browser, chrome
from repro.runtime.simtime import ms


@pytest.mark.parametrize("name", available())
def test_every_registered_defense_is_a_backend(name):
    defense = create(name)
    assert isinstance(defense, DefenseBackend)
    assert defense.capabilities <= set(CAPABILITIES)


@pytest.mark.parametrize("name", available())
def test_install_leaves_a_receipt_matching_declarations(name):
    browser = make_browser(name, seed=3)
    receipts = browser.defense_receipts
    assert len(receipts) == 1
    (receipt,) = receipts.values()
    assert receipt.capabilities == frozenset(create(name).capabilities)
    # applied slots come in canonical order and only from known kinds
    assert list(receipt.slots) == [
        kind for kind in CAPABILITIES if kind in receipt.slots
    ]


@pytest.mark.parametrize("name", available())
def test_install_is_idempotent_per_browser(name):
    browser = make_browser(name, seed=1)
    defense = browser.defense
    page_hooks = list(browser.page_hooks)
    worker_hooks = list(browser.worker_hooks)
    clock_factory = browser.clock_policy_factory
    receipts = dict(browser.defense_receipts)

    defense.install(browser)

    assert browser.page_hooks == page_hooks
    assert browser.worker_hooks == worker_hooks
    assert browser.clock_policy_factory is clock_factory
    assert browser.defense_receipts == receipts


@pytest.mark.parametrize("name", available())
def test_install_and_page_run_draw_no_global_random(name):
    random.seed(987654321)
    state = random.getstate()
    browser = make_browser(name, seed=2, with_bugs=False)
    page = browser.open_page("https://app.example/")
    page.run_script(
        lambda scope: scope.setTimeout(lambda: scope.performance.now(), 1)
    )
    browser.run(until=ms(50))
    assert random.getstate() == state


# ----------------------------------------------------------------------
# misdeclared synthetic backends are rejected at install time
# ----------------------------------------------------------------------
class _UndeclaredSlot(DefenseBackend):
    name = "synthetic-undeclared"
    capabilities = frozenset()  # ... yet provides a clock slot

    def clock_slot(self, browser):
        return ClockSlot(policy_factory=lambda: None)


class _UncoveredCapability(DefenseBackend):
    name = "synthetic-uncovered"
    capabilities = frozenset({"scope"})  # ... yet provides no slot


class _UnknownCapability(DefenseBackend):
    name = "synthetic-unknown"
    capabilities = frozenset({"quantum-tunneling"})


@pytest.mark.parametrize(
    "backend_cls, fragment",
    [
        (_UndeclaredSlot, "undeclared"),
        (_UncoveredCapability, "no covering"),
        (_UnknownCapability, "unknown capabilities"),
    ],
)
def test_misdeclared_backend_raises_policy_error(backend_cls, fragment):
    browser = Browser(profile=chrome(), seed=1)
    with pytest.raises(PolicyError, match=fragment):
        backend_cls().install(browser)


def test_misdeclared_backend_leaves_no_receipt():
    browser = Browser(profile=chrome(), seed=1)
    with pytest.raises(PolicyError):
        _UncoveredCapability().install(browser)
    assert browser.defense_receipts == {}


# ----------------------------------------------------------------------
# registry error reporting
# ----------------------------------------------------------------------
def test_create_unknown_defense_lists_available():
    with pytest.raises(UnknownDefenseError) as err:
        create("analyze")
    message = str(err.value)
    assert "'analyze'" in message
    for name in available():
        assert name in message
    # stays a KeyError for callers that catch the historical type
    assert isinstance(err.value, KeyError)
