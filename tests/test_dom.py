"""Unit tests for the DOM substrate."""

import pytest

from repro.errors import SimulationError
from repro.runtime.dom import Document
from repro.runtime.simulator import Simulator


@pytest.fixture
def doc():
    return Document(Simulator())


def test_document_starts_with_html_and_body(doc):
    assert doc.document_element.tag == "html"
    assert doc.body.tag == "body"
    assert doc.body.connected
    assert doc.node_count() == 2


def test_create_and_append(doc):
    div = doc.create_element("DIV")
    assert div.tag == "div"
    assert not div.connected
    doc.body.append_child(div)
    assert div.connected
    assert div.parent is doc.body
    assert doc.node_count() == 3


def test_append_reparents(doc):
    a = doc.body.append_child(doc.create_element("a"))
    b = doc.body.append_child(doc.create_element("b"))
    b.append_child(a)
    assert a.parent is b
    assert a not in doc.body.children


def test_remove_child(doc):
    div = doc.body.append_child(doc.create_element("div"))
    doc.body.remove_child(div)
    assert not div.connected
    with pytest.raises(SimulationError):
        doc.body.remove_child(div)


def test_attributes(doc):
    div = doc.create_element("div")
    div.set_attribute("id", "main")
    assert div.get_attribute("id") == "main"
    assert div.get_attribute("missing") is None


def test_mutations_mark_document_dirty(doc):
    doc.dirty = False
    div = doc.create_element("div")
    doc.body.append_child(div)
    assert doc.dirty
    doc.dirty = False
    div.set_style("color", "red")
    assert doc.dirty


def test_src_triggers_resource_loader_when_connected(doc):
    loads = []
    doc.resource_loader = loads.append
    img = doc.create_element("img")
    img.set_attribute("src", "/a.png")  # not connected: no load
    assert loads == []
    doc.body.append_child(img)  # connected with src: load fires
    assert loads == [img]
    img.set_attribute("src", "/b.png")  # src change while connected
    assert loads == [img, img]


def test_serialization_is_deterministic(doc):
    div = doc.body.append_child(doc.create_element("div"))
    div.set_attribute("b", "2")
    div.set_attribute("a", "1")
    div.text = "hi"
    serialized = doc.serialize()
    assert serialized == '<html><body><div a="1" b="2">hi</div></body></html>'
    assert doc.serialize() == serialized


def test_descendants_depth_first(doc):
    a = doc.body.append_child(doc.create_element("a"))
    a.append_child(doc.create_element("b"))
    doc.body.append_child(doc.create_element("c"))
    tags = [el.tag for el in doc.document_element.descendants()]
    assert tags == ["body", "a", "b", "c"]


def test_get_elements_by_tag(doc):
    doc.body.append_child(doc.create_element("span"))
    doc.body.append_child(doc.create_element("span"))
    doc.body.append_child(doc.create_element("div"))
    assert len(doc.get_elements_by_tag("SPAN")) == 2


def test_dom_operations_consume_time(doc):
    sim = doc.sim
    from repro.runtime.simulator import ExecutionFrame

    frame = ExecutionFrame(0, "t")
    sim.push_frame(frame)
    doc.create_element("div")
    assert frame.elapsed > 0
    sim.pop_frame()
