"""Tests for the telemetry run layer: spans, reporter, session, exports.

The flagship assertions here come straight from the issue's acceptance
criteria:

* a 200-cell cube run's merged p50/p95 queue-delay quantiles are within
  1% rank error of the exact full-sample percentiles, while the engine
  never materialises a per-cell raw sample list in the parent process
  (the merge path is instrumented to prove it);
* the deterministic snapshot is byte-identical across ``--parallel``
  worker counts for a fixed seed;
* engine and cache accounting are mirrored into their own sections and
  never double-counted in the metrics section.
"""

import io
import json
import math
import os
import re
import sys

import pytest

from repro.harness.cache import ResultCache
from repro.harness.matrix import run_table1
from repro.harness.parallel import Cell, ExperimentEngine
from repro.telemetry import (
    QUEUE_DELAY_PREFIX,
    LiveReporter,
    QuantileSketch,
    RunTelemetry,
    SpanRecorder,
    current_recorder,
    current_run,
    prometheus_lines,
    render_prometheus,
    render_summary,
    set_recorder,
    span,
    telemetry_session,
    worker_recorder,
    write_telemetry,
)
from repro.trace import metrics as metrics_mod

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
)
from ci_checks import check_runlog, check_telemetry  # noqa: E402

MATRIX_ATTACKS = ["clock-edge", "svg-filtering"]
MATRIX_DEFENSES = ["legacy-chrome", "jskernel"]


def read_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle.read().splitlines()]


# ----------------------------------------------------------------------
# span recorder
# ----------------------------------------------------------------------
def test_span_recorder_emits_balanced_nested_jsonl(tmp_path):
    path = str(tmp_path / "run.jsonl")
    recorder = SpanRecorder(path)
    with recorder.span("outer", label="a") as outer_id:
        recorder.point("checkpoint", n=1)
        with recorder.span("inner") as inner_id:
            pass
    recorder.close()

    records = read_records(path)
    assert [r["ev"] for r in records] == [
        "span_begin",
        "point",
        "span_begin",
        "span_end",
        "span_end",
    ]
    for record in records:
        assert {"ev", "ts", "pid"} <= set(record)
        assert record["pid"] == os.getpid()
    begin_outer, point, begin_inner, end_inner, end_outer = records
    # parent linkage reconstructs the execution tree
    assert begin_outer["parent"] is None
    assert point["parent"] == outer_id
    assert begin_inner["parent"] == outer_id
    assert end_inner["span"] == inner_id and "dur_s" in end_inner
    assert end_outer["span"] == outer_id and "dur_s" in end_outer
    assert begin_outer["attrs"] == {"label": "a"}
    # closing twice and emitting after close are safe no-ops
    recorder.close()
    recorder.emit("late")
    assert len(read_records(path)) == 5


def test_module_span_is_a_noop_without_a_recorder(tmp_path):
    assert current_recorder() is None
    with span("anything", x=1) as span_id:
        assert span_id is None

    recorder = SpanRecorder(str(tmp_path / "run.jsonl"))
    previous = set_recorder(recorder)
    try:
        with span("covered") as span_id:
            assert span_id is not None
    finally:
        set_recorder(previous)
        recorder.close()
    assert [r["ev"] for r in read_records(recorder.path)] == ["span_begin", "span_end"]


def test_worker_recorder_opens_the_inherited_path_once(tmp_path, monkeypatch):
    from repro.telemetry import spans as spans_mod

    path = str(tmp_path / "run.jsonl")
    monkeypatch.setenv("REPRO_RUNLOG", path)
    monkeypatch.setattr(spans_mod, "_active", None)

    opens = []
    real_init = SpanRecorder.__init__

    def counting_init(self, recorder_path):
        opens.append(recorder_path)
        real_init(self, recorder_path)

    monkeypatch.setattr(SpanRecorder, "__init__", counting_init)

    recorder = worker_recorder()
    assert recorder is not None and recorder.path == path
    # regression: a long-lived pool worker calls worker_recorder() once
    # per chunk; it must reuse the cached recorder (one fd, one lock),
    # not construct a fresh SpanRecorder per call
    for _ in range(5):
        assert worker_recorder() is recorder
    assert opens == [path]
    assert current_recorder() is recorder  # installed ambiently

    recorder.point("from-worker")
    assert read_records(path)[0]["name"] == "from-worker"

    # a *changed* inherited path (new telemetry session in the parent)
    # does trigger one reopen
    other = str(tmp_path / "other.jsonl")
    monkeypatch.setenv("REPRO_RUNLOG", other)
    reopened = worker_recorder()
    assert reopened is not recorder and reopened.path == other
    assert opens == [path, other]

    # with no inherited path the cached recorder still serves (the
    # parent process inside a telemetry session), and with neither a
    # cache nor a path there is nothing to record to
    monkeypatch.delenv("REPRO_RUNLOG")
    assert worker_recorder() is reopened
    monkeypatch.setattr(spans_mod, "_active", None)
    assert worker_recorder() is None

    recorder.close()
    reopened.close()


# ----------------------------------------------------------------------
# live reporter
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.moment = 100.0

    def __call__(self):
        return self.moment


def test_live_reporter_renders_progress_and_throttles():
    clock = FakeClock()
    stream = io.StringIO()
    telemetry = RunTelemetry("cube")
    telemetry.reporter = LiveReporter(
        "cube", stream=stream, interval=0.2, now=clock, interactive=True
    )
    telemetry.engine_run_started(cells=4, workers=2)
    telemetry.shards_planned(2)

    cell = Cell("cube", {"attack": "a", "defense": "d", "seed": 0})
    clock.moment += 1.0
    telemetry.cell_finished(cell, ok=True, cached=True)
    telemetry.cell_finished(cell, ok=True, cached=False)  # throttled: same instant
    assert telemetry.reporter.renders == 1

    clock.moment += 1.0
    telemetry.merge_metrics(
        {"sketches": {QUEUE_DELAY_PREFIX + "main": _sketch_of([0, 1000, 2500000]).to_dict()}}
    )
    telemetry.shard_done(0, 2)
    telemetry.cell_finished(cell, ok=False, cached=False, error="boom")
    telemetry.reporter.finish(telemetry)

    line = stream.getvalue().split("\r")[-1]
    assert line.endswith("\n")
    assert "cube" in line
    assert "3/4 cells" in line and "75%" in line
    assert "cache 33% hit" in line
    assert "errors 1" in line
    assert "shard 1/2" in line
    assert "q-delay p50" in line
    assert "eta" in line


def test_live_reporter_falls_back_to_newlines_off_tty():
    clock = FakeClock()
    stream = io.StringIO()  # StringIO has no isatty -> detected non-interactive
    telemetry = RunTelemetry("cube")
    reporter = LiveReporter("cube", stream=stream, interval=0.2, now=clock)
    telemetry.reporter = reporter
    assert reporter.interactive is False
    # the non-interactive throttle is much coarser than the TTY repaint
    assert reporter.interval == 5.0

    telemetry.engine_run_started(cells=4, workers=2)
    cell = Cell("cube", {"attack": "a", "defense": "d", "seed": 0})
    clock.moment += 6.0
    telemetry.cell_finished(cell, ok=True, cached=False)
    clock.moment += 1.0  # under the 5s throttle: no line
    telemetry.cell_finished(cell, ok=True, cached=False)
    clock.moment += 6.0
    telemetry.cell_finished(cell, ok=True, cached=False)
    reporter.finish(telemetry)

    output = stream.getvalue()
    # newline-delimited progress lines, never the \r-overwrite trick
    # (piped to a CI log, \r would concatenate every repaint into one line)
    assert "\r" not in output
    lines = output.splitlines()
    assert len(lines) == 3  # two throttled updates + the final repaint
    assert all(line.startswith("cube") for line in lines)
    assert "3/4 cells" in lines[-1]
    # and the explicit override still forces TTY behaviour
    forced = LiveReporter("cube", stream=io.StringIO(), now=clock, interactive=True)
    assert forced.interactive is True and forced.interval == 0.2


def test_live_reporter_detects_a_tty(monkeypatch):
    class TtyStream(io.StringIO):
        def isatty(self):
            return True

    reporter = LiveReporter("cube", stream=TtyStream())
    assert reporter.interactive is True


def _sketch_of(values):
    sketch = QuantileSketch()
    for value in values:
        sketch.add(value)
    return sketch


# ----------------------------------------------------------------------
# the session: ambient install, run log lifecycle, restoration
# ----------------------------------------------------------------------
def test_telemetry_session_installs_and_restores_everything(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RUNLOG", raising=False)
    path = str(tmp_path / "RUN_matrix.jsonl")
    stream = io.StringIO()
    assert current_run() is None

    with telemetry_session("matrix", live=True, runlog=path, stream=stream) as telem:
        assert current_run() is telem
        assert os.environ["REPRO_RUNLOG"] == path
        result = run_table1(
            attacks=MATRIX_ATTACKS, defenses=MATRIX_DEFENSES, seed=0
        )

    assert current_run() is None
    assert current_recorder() is None
    assert "REPRO_RUNLOG" not in os.environ
    assert result.errors == []

    records = read_records(path)
    assert records[0]["ev"] == "run_begin" and records[0]["command"] == "matrix"
    assert records[-1]["ev"] == "run_end"
    assert records[-1]["cells"] == 4 and records[-1]["computed"] == 4
    # the matrix run wrapped the engine in a matrix.run span and logged
    # one outcome per cell
    names = [r.get("name") for r in records]
    assert "matrix.run" in names
    assert sum(1 for r in records if r.get("name") == "engine.cell") == 4
    # the validator promoted to CI agrees
    assert "spans balanced" in check_runlog(path)
    # live output ended with a newline'd final repaint
    assert stream.getvalue().endswith("\n")
    assert "4/4 cells" in stream.getvalue()


def test_engine_accounting_balances_in_the_snapshot():
    with telemetry_session("matrix") as telem:
        run_table1(attacks=MATRIX_ATTACKS, defenses=MATRIX_DEFENSES, seed=0)
    snapshot = telem.snapshot()
    assert snapshot["version"] == 1
    assert snapshot["command"] == "matrix"
    engine = snapshot["engine"]
    assert engine["cells"] == engine["computed"] + engine["cached"] == 4
    assert engine["runs"] == 1 and engine["errors"] == 0
    # runtime metrics came back from the private per-cell tracers
    assert snapshot["metrics"]["counters"]
    assert snapshot["metrics"]["sketches"]


# ----------------------------------------------------------------------
# satellite: deterministic merging across worker counts
# ----------------------------------------------------------------------
def test_snapshot_is_byte_identical_across_worker_counts():
    snapshots = {}
    for workers in (None, 2, 3):
        with telemetry_session("matrix") as telem:
            run_table1(
                attacks=MATRIX_ATTACKS,
                defenses=MATRIX_DEFENSES,
                seed=0,
                parallel=workers,
            )
        snapshots[workers] = json.dumps(telem.snapshot(), sort_keys=True)
    assert snapshots[None] == snapshots[2] == snapshots[3]


# ----------------------------------------------------------------------
# satellite: cache/engine counters mirrored once, never double-counted
# ----------------------------------------------------------------------
def test_cache_traffic_is_mirrored_without_double_counting(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cells = [
        Cell("table1", {"attack": attack, "defense": "jskernel", "seed": 0})
        for attack in MATRIX_ATTACKS
    ]
    with telemetry_session("matrix") as telem:
        engine = ExperimentEngine(cache=cache)
        engine.run(cells)  # cold: all computed
        engine.run(cells)  # warm: all cached

    assert telem.engine == {
        "runs": 2,
        "cells": 4,
        "computed": 2,
        "cached": 2,
        "errors": 0,
    }
    # mirrored straight from the ResultCache's own counters
    assert telem.cache == {"hits": cache.hits, "misses": cache.misses, "stores": cache.stores}
    assert telem.cache == {"hits": 2, "misses": 2, "stores": 2}
    # and kept out of the metrics section: runtime metrics only
    leaked = [
        name
        for name in telem.metrics.counters
        if name.startswith("engine.") or name.startswith("cache.")
    ]
    assert leaked == []


# ----------------------------------------------------------------------
# acceptance: 200-cell cube, sketch quantiles vs exact percentiles
# ----------------------------------------------------------------------
def _cube_cells(seeds):
    return [
        Cell(
            "cube",
            {"attack": attack, "defense": defense, "seed": seed, "sketches": True},
        )
        for attack in ("svg-filtering", "cache-attack")
        for defense in ("legacy-chrome", "jskernel")
        for seed in seeds
    ]


def test_200_cell_cube_quantiles_match_exact_percentiles_without_raw_samples():
    cells = _cube_cells(range(50))
    assert len(cells) == 200

    # --- reference pass (serial): spy on the sketch tee to also keep
    # the exact raw queue-delay samples the sketches absorb
    sketch_names = {}
    keepalive = []
    exact_samples = []
    real_histogram = metrics_mod.MetricsRegistry.histogram
    real_add = QuantileSketch.add

    def spy_histogram(self, name, *args, **kwargs):
        histogram = real_histogram(self, name, *args, **kwargs)
        if histogram.sketch is not None and id(histogram.sketch) not in sketch_names:
            sketch_names[id(histogram.sketch)] = name
            keepalive.append(histogram.sketch)
        return histogram

    def spy_add(self, value, weight=1):
        if sketch_names.get(id(self), "").startswith(QUEUE_DELAY_PREFIX):
            exact_samples.extend([value] * weight)
        return real_add(self, value, weight)

    with pytest.MonkeyPatch.context() as patcher:
        patcher.setattr(metrics_mod.MetricsRegistry, "histogram", spy_histogram)
        patcher.setattr(QuantileSketch, "add", spy_add)
        with telemetry_session("cube") as serial_telem:
            ExperimentEngine(workers=None).run(cells)
    serial_snapshot = json.dumps(serial_telem.snapshot(), sort_keys=True)

    merged = serial_telem.metrics.merged_sketch(QUEUE_DELAY_PREFIX)
    assert merged.count == len(exact_samples)
    assert len(exact_samples) > 10_000  # a real sample volume, not a toy

    # --- measured pass (parallel, unpatched): instrument the merge path
    # to prove no per-cell raw sample list ever reaches the parent
    crossings = []
    real_merge = RunTelemetry.merge_metrics

    def spy_merge(self, snapshot):
        crossings.append(snapshot)
        return real_merge(self, snapshot)

    with pytest.MonkeyPatch.context() as patcher:
        patcher.setattr(RunTelemetry, "merge_metrics", spy_merge)
        with telemetry_session("cube") as telem:
            ExperimentEngine(workers=2).run(cells)

    # deterministic merging: the parallel snapshot equals the serial one
    assert json.dumps(telem.snapshot(), sort_keys=True) == serial_snapshot

    # everything that crossed the merge path is bounded sketch/histogram
    # state — centroid lists capped by the compression bound, histogram
    # count lists capped by the bucket table — never a raw sample list
    assert crossings
    crossed_samples = 0
    crossed_centroids = 0
    for snapshot in crossings:
        for name, data in snapshot.get("sketches", {}).items():
            centroids = len(data["pos"]) + len(data["neg"])
            assert centroids <= data["max_centroids"]
            if name.startswith(QUEUE_DELAY_PREFIX):
                crossed_samples += data["count"]
                crossed_centroids += centroids
        for data in snapshot.get("histograms", {}).values():
            assert len(data["counts"]) == len(data["bounds"]) + 1
    # the merged stream summarised far more samples than the state that
    # carried them (the zero mode alone collapses thousands of samples)
    assert crossed_samples == len(exact_samples)
    assert crossed_centroids < crossed_samples / 10

    # --- the acceptance bound: p50/p95 within 1% rank error of the
    # exact full-sample percentiles (bracketing exact values one rank
    # percent either side, widened by the sketch's value resolution)
    exact_samples.sort()
    n = len(exact_samples)
    quantiles = telem.queue_delay_quantiles()
    for q, estimate in ((0.5, quantiles["p50"]), (0.95, quantiles["p95"])):
        lo = exact_samples[max(0, math.floor((q - 0.01) * (n - 1)))]
        hi = exact_samples[min(n - 1, math.ceil((q + 0.01) * (n - 1)))]
        assert lo * 0.989 - 1e-9 <= estimate <= hi * 1.011 + 1e-9, (
            f"q={q}: {estimate} outside exact rank window [{lo}, {hi}]"
        )


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _small_report():
    with telemetry_session("matrix") as telem:
        run_table1(attacks=["svg-filtering"], defenses=["legacy-chrome"], seed=0)
    return telem.report()


def test_report_adds_the_wall_clock_section():
    report = _small_report()
    run = report["run"]
    assert run["duration_s"] > 0
    assert run["cells_per_s"] > 0
    assert run["shards"] == {"total": 0, "done": 0}  # serial: no shards
    assert set(run["queue_delay_quantiles"]) == {"p50", "p95", "p99"}


def test_prometheus_export_grammar_and_content(tmp_path):
    report = _small_report()
    lines = prometheus_lines(report)
    by_name = {}
    for line in lines:
        if line.startswith("#"):
            continue
        name = line.split("{")[0].split(" ")[0]
        by_name.setdefault(name, []).append(line)

    assert by_name["repro_engine_cells"] == ["repro_engine_cells 1"]
    assert "repro_run_duration_seconds" in by_name
    # histogram series: cumulative le buckets ending in +Inf, plus
    # count and sum
    histogram_buckets = [
        line
        for name, series in by_name.items()
        if name.endswith("_bucket")
        for line in series
    ]
    assert histogram_buckets
    assert any('le="+Inf"' in line for line in histogram_buckets)
    # sketch-derived summary series with quantile labels
    sketch_series = [
        line
        for name, series in by_name.items()
        if name.endswith("_sketch")
        for line in series
    ]
    assert any('quantile="0.5"' in line for line in sketch_series)
    assert any('quantile="0.99"' in line for line in sketch_series)
    # a histogram's exported _sum carries the real accumulated value
    metrics = report["metrics"]["histograms"]
    name, snap = next(iter(metrics.items()))
    prom = "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)
    assert by_name[prom + "_sum"] == [f"{prom}_sum {snap['sum']}"]

    json_path, prom_path = write_telemetry(report, str(tmp_path / "telemetry.json"))
    assert prom_path == str(tmp_path / "telemetry.prom")
    assert json.load(open(json_path))["engine"]["cells"] == 1
    assert open(prom_path).read() == render_prometheus(report)
    # the promoted CI validator accepts what we just wrote
    assert "Prometheus samples" in check_telemetry(json_path, prom_path)


def test_render_summary_is_one_line():
    report = _small_report()
    summary = render_summary(report)
    assert summary.startswith("telemetry: cells=1 computed=1 cached=0")
    assert "duration=" in summary
    assert "\n" not in summary


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------
def test_cli_cube_writes_runlog_and_telemetry(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.delenv("REPRO_RUNLOG", raising=False)
    runlog = str(tmp_path / "RUN_cube.jsonl")
    out = str(tmp_path / "telemetry.json")
    rc = main(
        [
            "cube",
            "--attacks",
            "svg-filtering",
            "--defenses",
            "legacy-chrome,jskernel",
            "--no-cache",
            "--runlog",
            runlog,
            "--telemetry-out",
            out,
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "telemetry: cells=2 computed=2" in captured.err
    assert f"wrote {runlog}" in captured.err
    assert "cell outcomes" in check_runlog(runlog)
    assert "2 cells (2 computed, 0 cached)" in check_telemetry(
        out, str(tmp_path / "telemetry.prom")
    )
    # telemetry mode runs the cube with sketches, so the snapshot's
    # quantiles are populated
    report = json.load(open(out))
    assert report["run"]["queue_delay_quantiles"]["p95"] > 0


def test_cli_rejects_telemetry_flags_on_non_experiment_commands(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["analyze", "races", "cve-2018-5092", "--live"])
    assert "--live" in capsys.readouterr().err
