"""The paper's §VI self-modifying-code analysis, as executable tests.

"Even if the adversary knows that JSKernel is present, the adversary
cannot bypass the protection enforced by it" — four reasons, each tested.
"""

import pytest

from repro.errors import SecurityError
from repro.kernel import comm
from repro.runtime.simtime import ms


def run(browser, until_ms=300):
    browser.run(until=ms(until_ms))


def test_redefining_wrapped_api_does_not_recover_native_timing(kernel_browser, kernel_page):
    """Reason (i)/(ii): natives live in kernel closures; redefinition only
    breaks the page's own functionality."""
    seen = {}

    def script(scope):
        # the adversary saves the (already-wrapped) API and re-wraps it
        saved = scope.setTimeout

        def adversarial_setTimeout(cb, delay=0, *args):
            return saved(cb, delay, *args)

        scope.setTimeout = adversarial_setTimeout
        t0 = scope.performance.now()
        scope.setTimeout(lambda: seen.__setitem__("delta", scope.performance.now() - t0), 5)

    kernel_page.run_script(script)
    run(kernel_browser)
    # still on the deterministic grid: the kernel was not bypassed
    assert seen["delta"] == pytest.approx(6.0, abs=1.01)


def test_timing_objects_are_encapsulated(kernel_browser, kernel_page):
    """The adversary cannot reach a native clock through any scope path."""
    findings = {}

    def script(scope):
        findings["performance_type"] = type(scope.performance).__name__
        findings["date_type"] = type(scope.Date).__name__
        try:
            scope.performance = object()
        except SecurityError:
            findings["performance_sealed"] = True
        try:
            scope.Date = object()
        except SecurityError:
            findings["date_sealed"] = True

    kernel_page.run_script(script)
    run(kernel_browser)
    assert findings["performance_type"] == "KernelPerformance"
    assert findings["date_type"] == "KernelDate"
    assert findings.get("performance_sealed") and findings.get("date_sealed")


def test_onmessage_setter_trap_not_reconfigurable(kernel_browser, kernel_page):
    """Reason (iv): critical setter traps are non-configurable."""
    outcome = {}

    def script(scope):
        worker = scope.Worker(lambda ws: None)
        for target in (scope, worker):
            try:
                target.define_setter_trap("onmessage", lambda fn: None)
            except SecurityError:
                outcome.setdefault("blocked", 0)
                outcome["blocked"] += 1

    kernel_page.run_script(script)
    run(kernel_browser)
    assert outcome["blocked"] == 2


def test_kernel_injected_into_every_new_context(kernel_browser):
    """Reason (iii): a newly opened window gets its own kernel."""
    first = kernel_browser.open_page("https://a.example/")
    second = kernel_browser.open_page("https://b.example/")
    assert hasattr(first, "jskernel") and hasattr(second, "jskernel")
    assert first.jskernel is not second.jskernel


def test_worker_scope_clock_is_kernel_too(kernel_browser, kernel_page):
    """No un-wrapped clock hides in the worker global scope."""
    seen = {}

    def script(scope):
        def worker_main(ws):
            ws.postMessage(type(ws.performance).__name__)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.__setitem__("type", event.data)

    kernel_page.run_script(script)
    run(kernel_browser)
    assert seen["type"] == "KernelPerformance"


def test_envelope_spoofing_cannot_reach_kernel_commands(kernel_browser, kernel_page):
    """A page posting kernel-shaped payloads stays in user space."""
    seen = []

    def script(scope):
        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage(("echo", event.data))

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)
        # attempt to spoof the kernel's load-user-thread command
        worker.postMessage({comm.ENVELOPE_KEY: comm.TYPE_KERNEL, "command": "load-user-thread"})

    kernel_page.run_script(script)
    run(kernel_browser)
    # the spoof arrived as ordinary user data, echoed back intact
    assert seen and seen[0][0] == "echo"
    assert seen[0][1].get("command") == "load-user-thread"
    # and no second user thread was created
    assert len(kernel_page.jskernel.threads) == 1


def test_adversary_cannot_observe_real_time_via_any_installed_channel(
    kernel_browser, kernel_page
):
    """Belt-and-braces: sample every clock-ish channel around a secret."""
    readings = {}

    def script(scope):
        el = scope.document.create_element("div")
        scope.document.body.append_child(el)
        scope.animate(el, "left", 0.0, 1000.0, 1000.0)
        video = scope.createVideo()
        video.play()
        before = (
            scope.performance.now(),
            scope.Date.now(),
            scope.getComputedStyle(el, "left"),
            video.current_time,
        )
        scope.busy_work(40.0)  # the secret
        after = (
            scope.performance.now(),
            scope.Date.now(),
            scope.getComputedStyle(el, "left"),
            video.current_time,
        )
        readings["deltas"] = [a - b for a, b in zip(after, before)]

    kernel_page.run_script(script)
    run(kernel_browser)
    assert all(delta < 2.0 for delta in readings["deltas"])
