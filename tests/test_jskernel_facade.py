"""Tests for the JSKernel facade and configuration surface."""

from hypothesis import given, settings, strategies as st

from repro.kernel import JSKernel, KernelEvent, KernelEventQueue, SchedulingGrid
from repro.kernel.policies import DeterministicSchedulingPolicy
from repro.runtime import Browser, chrome
from repro.runtime.simtime import ms


def test_default_kernel_bundles_all_policies():
    kernel = JSKernel()
    assert kernel.policy.find("deterministic-scheduling")
    for name in (
        "worker-lifecycle",
        "transfer-neuter",
        "worker-xhr-origin",
        "error-sanitizer",
        "private-mode-storage",
    ):
        assert kernel.policy.find(name), name


def test_kernel_without_cve_policies():
    kernel = JSKernel(include_cve_policies=False)
    assert kernel.policy.find("deterministic-scheduling")
    assert kernel.policy.find("worker-lifecycle") is None


def test_install_tracks_instances():
    kernel = JSKernel()
    browser = Browser(profile=chrome(), seed=1)
    kernel.install(browser)
    page_a = browser.open_page("https://a.example/")
    page_b = browser.open_page("https://b.example/")
    assert len(kernel.instances) == 2
    assert kernel.instance_for(page_a) is page_a.jskernel
    assert kernel.instance_for(page_b) is not kernel.instance_for(page_a)


def test_instance_for_unknown_page_is_none():
    kernel = JSKernel()
    browser = Browser(profile=chrome(), seed=1)
    kernel.install(browser)
    other_browser = Browser(profile=chrome(), seed=2)
    other_page = other_browser.open_page("https://x.example/")
    assert kernel.instance_for(other_page) is None


def test_custom_grid_changes_raf_slot():
    kernel = JSKernel(grid=SchedulingGrid(grids_ns={"raf": ms(20)}))
    browser = Browser(profile=chrome(), seed=1)
    kernel.install(browser)
    page = browser.open_page("https://x.example/")
    timestamps = []

    def script(scope):
        scope.requestAnimationFrame(timestamps.append)

    page.run_script(script)
    browser.run(until=ms(200))
    assert timestamps == [20.0]


def test_single_policy_is_wrapped_in_composite():
    kernel = JSKernel(policies=[DeterministicSchedulingPolicy()])
    assert kernel.policy.find("deterministic-scheduling")


# ----------------------------------------------------------------------
# queue properties
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "pop", "cancel-head", "confirm-head"]),
            st.integers(min_value=0, max_value=10**6),
        ),
        max_size=40,
    )
)
def test_queue_pop_order_property(ops):
    """Each pop returns the live minimum-predicted-time event, and
    cancelled events never come out at all (model-based check)."""
    queue = KernelEventQueue()
    model = []  # live events, mirroring the queue
    cancelled_ids = set()
    for op, value in ops:
        if op == "push":
            event = queue.push(KernelEvent("k", value, {"default": lambda: None}))
            model.append(event)
        elif op == "pop":
            event = queue.pop()
            live = [e for e in model if e.id not in cancelled_ids]
            if not live:
                assert event is None
            else:
                expected = min(live, key=lambda e: (e.predicted_time, e.id))
                assert event is expected
                model.remove(event)
        elif op == "cancel-head":
            head = queue.top()
            if head is not None:
                head.cancel()
                cancelled_ids.add(head.id)
        elif op == "confirm-head":
            head = queue.top()
            if head is not None and head.status == "pending":
                head.confirm()
