"""Unit tests for the defense registry and per-defense mechanisms."""

import pytest

from repro.defenses import (
    TABLE1_DEFENSES,
    available,
    create,
    make_browser,
)
from repro.runtime.clock import FuzzyClockPolicy, QuantizedClockPolicy
from repro.runtime.simtime import ms


def test_registry_contains_all_table1_columns():
    names = available()
    for defense in TABLE1_DEFENSES:
        assert defense in names
    assert "jskernel-nodet" in names and "jskernel-nocve" in names


def test_unknown_defense_raises():
    with pytest.raises(KeyError):
        create("quantum-shield")


def test_make_browser_uses_defense_base_browser():
    browser = make_browser("fuzzyfox")
    assert browser.profile.name == "firefox"
    browser = make_browser("chromezero")
    assert browser.profile.name == "chrome"


def test_make_browser_bug_toggle():
    assert make_browser("legacy-chrome").profile.has_bug("cve_2018_5092")
    assert not make_browser("legacy-chrome", with_bugs=False).profile.has_bug("cve_2018_5092")


def test_legacy_defense_changes_nothing():
    browser = make_browser("legacy-chrome", with_bugs=False)
    assert isinstance(browser.clock_policy_factory(), QuantizedClockPolicy)
    assert browser.page_hooks == [] and browser.worker_hooks == []


def test_fuzzyfox_installs_fuzzy_clock_and_pause_pump():
    browser = make_browser("fuzzyfox", with_bugs=False)
    assert isinstance(browser.clock_policy_factory(), FuzzyClockPolicy)
    page = browser.open_page("https://x.example/")
    page.loop.record_trace = True
    browser.run(until=ms(30))
    pause_tasks = [r for r in page.loop.trace if r.label == "fuzzyfox-pause"]
    assert pause_tasks  # the pump is running


def test_tor_clock_and_network():
    browser = make_browser("tor", with_bugs=False)
    policy = browser.clock_policy_factory()
    assert policy.report(ms(150)) == ms(100)
    assert browser.network.base_latency_ns >= ms(200)
    page = browser.open_page("https://x.example/")
    assert page.scope.js_cost_scale > 10  # JIT disabled


def test_chromezero_polyfill_worker_runs_on_main_loop():
    browser = make_browser("chromezero", with_bugs=False)
    page = browser.open_page("https://x.example/")
    seen = []

    def script(scope):
        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage(event.data + 1)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)
        worker.postMessage(1)

    page.run_script(script)
    browser.run(until=ms(200))
    assert seen == [2]
    assert browser.workers == []  # no native worker was created


def test_chromezero_polyfill_has_no_parallelism():
    """The paper's cost: worker work blocks the main thread."""
    browser = make_browser("chromezero", with_bugs=False)
    page = browser.open_page("https://x.example/")
    times = {}

    def script(scope):
        def worker_main(ws):
            def on_message(_event):
                ws.busy_work(30.0)
                ws.postMessage("done")

            ws.onmessage = on_message

        worker = scope.Worker(worker_main)
        worker.postMessage("go")
        # a main-thread timer that should fire at 5ms gets blocked by the
        # "worker" computation running on the same loop
        scope.setTimeout(lambda: times.__setitem__("timer", browser.sim.now), 5)

    page.run_script(script)
    browser.run(until=ms(300))
    assert times["timer"] >= ms(30)


def test_deterfox_wraps_async_but_keeps_real_clocks():
    browser = make_browser("deterfox", with_bugs=False)
    page = browser.open_page("https://x.example/")
    seen = {}

    def script(scope):
        t0 = scope.performance.now()
        scope.busy_work(20.0)
        seen["clock_delta"] = scope.performance.now() - t0

        def frame(ts):
            seen.setdefault("raf_ts", []).append(ts)
            if len(seen["raf_ts"]) < 3:
                scope.requestAnimationFrame(frame)

        scope.requestAnimationFrame(frame)

    page.run_script(script)
    browser.run(until=ms(300))
    assert seen["clock_delta"] >= 19.0  # REAL clock: busy work visible
    deltas = [seen["raf_ts"][i + 1] - seen["raf_ts"][i] for i in range(2)]
    assert deltas == [10.0, 10.0]  # deterministic rAF delivery


def test_jskernel_defense_variants():
    full = create("jskernel")
    nodet = create("jskernel-nodet")
    nocve = create("jskernel-nocve")
    assert full.kernel.policy.find("deterministic-scheduling")
    assert full.kernel.policy.find("worker-lifecycle")
    assert nodet.kernel.policy.find("deterministic-scheduling") is None
    assert nocve.kernel.policy.find("worker-lifecycle") is None
