"""Unit tests for ArrayBuffers and the SharedArrayBuffer counter timer."""

import pytest

from repro.errors import SimulationError, UseAfterFreeError
from repro.runtime.heap import SimHeap
from repro.runtime.sharedbuf import SharedCounterBuffer, SimArrayBuffer, make_timer_pair
from repro.runtime.simtime import ms
from repro.runtime.simulator import ExecutionFrame, Simulator


def test_array_buffer_read_write():
    buffer = SimArrayBuffer(SimHeap(), 64)
    buffer.write(3, 0xAB)
    assert buffer.read(3) == 0xAB


def test_detached_buffer_rejects_access():
    buffer = SimArrayBuffer(SimHeap(), 64)
    buffer.detach()
    with pytest.raises(SimulationError):
        buffer.read(0)
    with pytest.raises(SimulationError):
        buffer.write(0, 1)


def test_freed_backing_store_is_uaf():
    buffer = SimArrayBuffer(SimHeap(), 64)
    buffer.ptr.free()
    with pytest.raises(UseAfterFreeError):
        buffer.read(0)


def test_transferred_view_shares_store():
    buffer = SimArrayBuffer(SimHeap(), 64)
    buffer.write(0, 7)
    view = buffer.transferred_view()
    buffer.detach()
    assert view.read(0) == 7
    view.write(0, 9)
    # new view of the same store still sees the write
    assert buffer.ptr.deref()[0] == 9


def test_counter_tracks_rate_activity():
    sim = Simulator()
    counter = SharedCounterBuffer(sim)
    frame = ExecutionFrame(0, "w")
    sim.push_frame(frame)
    counter.start_increment_activity(rate_per_ms=1000.0)
    sim.pop_frame()
    frame = ExecutionFrame(ms(5), "r")
    sim.push_frame(frame)
    assert counter.load() == pytest.approx(5000, abs=10)
    sim.pop_frame()


def test_counter_freezes_when_stopped():
    sim = Simulator()
    counter = SharedCounterBuffer(sim)
    frame = ExecutionFrame(0, "w")
    sim.push_frame(frame)
    counter.start_increment_activity(1000.0)
    sim.pop_frame()
    frame = ExecutionFrame(ms(3), "w")
    sim.push_frame(frame)
    counter.stop_increment_activity()
    sim.pop_frame()
    frame = ExecutionFrame(ms(10), "r")
    sim.push_frame(frame)
    assert counter.load() == pytest.approx(3000, abs=10)
    sim.pop_frame()


def test_store_resets_counter():
    sim = Simulator()
    counter = SharedCounterBuffer(sim)
    counter.store(42)
    assert counter.load_raw() == 42
    assert not counter.incrementing


def test_restarting_activity_accumulates():
    sim = Simulator()
    counter = SharedCounterBuffer(sim)
    frame = ExecutionFrame(0, "w")
    sim.push_frame(frame)
    counter.start_increment_activity(1000.0)
    frame.consume(ms(2))
    counter.start_increment_activity(2000.0)  # implicit stop + restart
    frame.consume(ms(1))
    assert counter.load_raw() == pytest.approx(2000 + 2000, abs=20)
    sim.pop_frame()


def test_make_timer_pair():
    sim = Simulator()
    counter, flag = make_timer_pair(sim)
    assert counter is not flag
    assert counter.load_raw() == 0


def test_counter_math_is_the_sharedmem_atomics_core():
    """SharedCounterBuffer delegates to the same state machine AtomicCell
    uses; RateActivity here IS the atomics one (re-exported)."""
    from repro.runtime.sharedbuf import RateActivity
    from repro.runtime.sharedmem.atomics import (
        AtomicCounterCore,
        RateActivity as AtomicsRateActivity,
    )

    assert RateActivity is AtomicsRateActivity
    counter = SharedCounterBuffer(Simulator())
    assert isinstance(counter._core, AtomicCounterCore)


def test_sab_timer_traces_pinned_byte_identical():
    """Golden pin for the atomics-core reroute: the sab-timer scenarios'
    exports must match the digests captured before the refactor.

    Regenerate tests/golden/sharedbuf_digests.json only on an intentional
    trace-schema change (recipe in the file's _comment).
    """
    import hashlib
    import json
    import os

    from repro.attacks import create
    from repro.trace import Tracer, capture
    from repro.trace.export import dump_chrome_trace, format_timeline

    golden_path = os.path.join(
        os.path.dirname(__file__), "golden", "sharedbuf_digests.json"
    )
    with open(golden_path, encoding="utf-8") as handle:
        golden = json.load(handle)

    def sha(text: str) -> str:
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    for defense in ("legacy-chrome", "jskernel", "detbrowser"):
        tracer = Tracer(enabled=True)
        with capture(tracer):
            create("sab-timer").run(defense)
        entry = golden[defense]
        assert len(tracer) == entry["events"], defense
        assert sha(dump_chrome_trace(tracer)) == entry["chrome_sha256"], defense
        assert sha(format_timeline(tracer)) == entry["timeline_sha256"], defense
