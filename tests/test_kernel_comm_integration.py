"""Integration tests for the kernel/user message overlay (paper §III-E2)."""

from hypothesis import given, settings, strategies as st

from repro.kernel import comm
from repro.runtime.simtime import ms


def test_user_payloads_round_trip_unchanged(kernel_browser, kernel_page):
    payloads = [
        42,
        "text",
        [1, 2, 3],
        {"nested": {"deep": True}},
        None,
        {"__jskernel__": "kernel", "command": "spoof"},  # envelope-shaped
    ]
    received = []

    def script(scope):
        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage(event.data)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: received.append(event.data)
        for payload in payloads:
            worker.postMessage(payload)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(500))
    assert received == payloads


def test_kernel_traffic_is_invisible_to_user_handlers(kernel_browser, kernel_page):
    """The load-user-thread / pendingChildFetch system messages must never
    surface in user onmessage handlers."""
    kernel_browser.network.host_simple(
        __import__("repro.runtime.origin", fromlist=["parse_url"]).parse_url(
            "https://app.example/f"
        ),
        5_000,
    )
    seen = []

    def script(scope):
        def worker_main(ws):
            ws.fetch("/f").then(lambda r: ws.postMessage("fetched"))

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(500))
    assert seen == ["fetched"]  # no envelopes, no sys commands


@settings(max_examples=30, deadline=None)
@given(
    payload=st.recursive(
        st.none() | st.booleans() | st.integers() | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=10,
    )
)
def test_wrap_classify_round_trip_property(payload):
    kind, unwrapped, command = comm.classify(comm.wrap_user(payload))
    assert kind == "user"
    assert unwrapped == payload
    assert command is None


@settings(max_examples=20, deadline=None)
@given(command=st.text(min_size=1, max_size=30), data=st.integers())
def test_kernel_envelopes_round_trip_property(command, data):
    kind, unwrapped, got_command = comm.classify(comm.wrap_kernel(command, data))
    assert kind == "kernel"
    assert got_command == command
    assert unwrapped == data
