"""Unit tests for the shared-memory object runtime.

Covers the pieces of ``repro.runtime.sharedmem`` in isolation: dict and
array objects, atomics (including wait/notify), locks and the rwlock,
refcount + mark/sweep collection in its safe, thread-local-roots and
cycle-leak modes, the wait-for-graph deadlock detector, and the
counter-thread clock.
"""

import pytest

from repro.errors import SimulationError, UseAfterCollectError
from repro.runtime import Browser, chrome
from repro.runtime.heap import SimHeap
from repro.runtime.sharedmem import SharedHeap
from repro.runtime.simtime import ms
from repro.runtime.simulator import ExecutionFrame, Simulator
from repro.trace import Tracer, capture


def make(*bugs):
    profile = chrome()
    for bug in bugs:
        profile.bugs[bug] = True
    browser = Browser(profile=profile, seed=1)
    page = browser.open_page("https://app.example/")
    return browser, page


def bare_heap(*bugs):
    """A SharedHeap outside any browser (native-context unit tests)."""
    profile = chrome()
    for bug in bugs:
        profile.bugs[bug] = True
    sim = Simulator()
    heap = SharedHeap(sim, SimHeap(time_fn=lambda: sim.now, sim=sim), profile)
    return sim, heap


# ----------------------------------------------------------------------
# objects
# ----------------------------------------------------------------------
def test_shared_dict_round_trip():
    browser, page = make()
    out = {}

    def script(scope):
        d = scope.sharedmem.Dict("cfg")
        d.set("a", 1)
        d.set("b", 2)
        d.delete("a")
        out["has_a"] = d.has("a")
        out["b"] = d.get("b")
        out["keys"] = d.keys()
        out["size"] = d.size

    page.run_script(script)
    browser.run(until=ms(10))
    assert out == {"has_a": False, "b": 2, "keys": ["b"], "size": 1}


def test_shared_array_round_trip():
    browser, page = make()
    out = {}

    def script(scope):
        a = scope.sharedmem.Array("buf")
        a.push(10)
        a.push(20)
        a.set(0, 11)
        out["first"] = a.get(0)
        out["popped"] = a.pop()
        out["size"] = a.size
        out["oob"] = a.get(7)
        try:
            a.set(7, 1)
        except IndexError:
            out["oob_set"] = "raised"

    page.run_script(script)
    browser.run(until=ms(10))
    assert out == {"first": 11, "popped": 20, "size": 1, "oob": None, "oob_set": "raised"}


def test_objects_visible_across_agents():
    browser, page = make()
    seen = []

    def script(scope):
        d = scope.sharedmem.Dict("shared")
        d.set("x", "from-main")

        def worker_main(ws):
            seen.append(d.get("x"))
            d.set("x", "from-worker")

        scope.Worker(worker_main)
        scope.setTimeout(lambda: seen.append(d.get("x")), 20)

    page.run_script(script)
    browser.run(until=ms(50))
    assert seen == ["from-main", "from-worker"]


# ----------------------------------------------------------------------
# atomics
# ----------------------------------------------------------------------
def test_atomic_add_and_cas_return_old_value():
    browser, page = make()
    out = {}

    def script(scope):
        atom = scope.sharedmem.Atomic("n")
        atom.store(5)
        out["add_old"] = atom.add(3)
        out["after_add"] = atom.load()
        out["cas_hit"] = atom.compare_exchange(8, 100)
        out["cas_miss"] = atom.compare_exchange(8, 200)
        out["final"] = atom.load()

    page.run_script(script)
    browser.run(until=ms(10))
    assert out == {
        "add_old": 5,
        "after_add": 8,
        "cas_hit": 8,
        "cas_miss": 100,
        "final": 100,
    }


def test_atomic_spin_counter_tracks_virtual_time():
    browser, page = make()
    out = {}

    def script(scope):
        atom = scope.sharedmem.Atomic("spin")
        atom.start_spin(1000.0)

        def later():
            out["value"] = atom.load()
            atom.stop_spin()
            out["spinning"] = atom.spinning

        scope.setTimeout(later, 5)

    page.run_script(script)
    browser.run(until=ms(20))
    assert out["value"] == pytest.approx(5000, abs=20)
    assert out["spinning"] is False


def test_atomics_wait_not_equal_returns_immediately():
    browser, page = make()
    out = {}

    def script(scope):
        atom = scope.sharedmem.Atomic("gate")
        atom.store(1)
        out["result"] = atom.wait(0, lambda reason: out.setdefault("woke", reason))

    page.run_script(script)
    browser.run(until=ms(10))
    assert out == {"result": "not-equal"}


def test_atomics_wait_notify_wakes_waiter():
    browser, page = make()
    events = []

    def script(scope):
        atom = scope.sharedmem.Atomic("gate")

        def waiter(ws):
            result = atom.wait(0, lambda reason: events.append(("woke", reason)))
            events.append(("wait", result))

        def notifier(ws):
            def later():
                atom.store(1)
                events.append(("notified", atom.notify()))

            ws.setTimeout(later, 5)

        scope.Worker(waiter)
        scope.Worker(notifier)

    page.run_script(script)
    browser.run(until=ms(50))
    assert ("wait", "waiting") in events
    assert ("notified", 1) in events
    assert ("woke", "ok") in events


def test_atomics_wait_times_out():
    browser, page = make()
    events = []

    def script(scope):
        atom = scope.sharedmem.Atomic("gate")

        def waiter(ws):
            atom.wait(0, lambda reason: events.append(reason), timeout_ns=ms(2))

        scope.Worker(waiter)

    page.run_script(script)
    browser.run(until=ms(50))
    assert events == ["timed-out"]


# ----------------------------------------------------------------------
# locks
# ----------------------------------------------------------------------
def test_lock_owner_tracking_and_wrong_owner_release():
    sim, heap = bare_heap()
    frame = ExecutionFrame(0, "a")
    sim.push_frame(frame)
    lock = None

    from repro.runtime.sharedmem import SharedLock

    lock = SharedLock(heap, "m")
    assert lock.acquire() is True
    assert lock.owner == "a"
    assert lock.held
    assert lock in heap.held_locks["a"]
    sim.pop_frame()

    sim.push_frame(ExecutionFrame(100, "b"))
    with pytest.raises(SimulationError):
        lock.release()
    sim.pop_frame()

    sim.push_frame(ExecutionFrame(200, "a"))
    lock.release()
    assert lock.owner is None
    assert heap.held_locks["a"] == []
    sim.pop_frame()


def test_lock_mutual_exclusion_and_fifo():
    browser, page = make()
    order = []

    def script(scope):
        lock = scope.sharedmem.Lock("m")

        def make_worker(tag, delay):
            def worker_main(ws):
                def critical():
                    order.append(f"{tag}:in")
                    ws.busy_work(1.0)
                    order.append(f"{tag}:out")
                    lock.release()

                ws.setTimeout(lambda: lock.acquire(critical), delay)

            return worker_main

        scope.Worker(make_worker("w1", 1))
        scope.Worker(make_worker("w2", 1.1))

    page.run_script(script)
    browser.run(until=ms(100))
    assert order == ["w1:in", "w1:out", "w2:in", "w2:out"]


def test_lock_reservation_prevents_barging():
    browser, page = make()
    out = {}
    events = []

    def script(scope):
        lock = scope.sharedmem.Lock("m")
        lock.acquire()  # main owns it from t=0

        def worker_main(ws):
            ws.setTimeout(lambda: lock.acquire(lambda: events.append("worker-in")), 1)

        scope.Worker(worker_main)

        def release_and_barge():
            lock.release()
            # ownership already passed to the parked waiter: a barging
            # try_acquire on the releasing thread must fail
            out["barged"] = lock.try_acquire()
            out["owner_is_main"] = lock.owner is None

        scope.setTimeout(release_and_barge, 20)

    page.run_script(script)
    browser.run(until=ms(100))
    assert out == {"barged": False, "owner_is_main": False}
    assert events == ["worker-in"]


def test_rwlock_readers_share_writer_excludes():
    browser, page = make()
    events = []

    def script(scope):
        rw = scope.sharedmem.RwLock("rw")
        events.append(("r1", rw.acquire_read()))
        events.append(("r2", rw.acquire_read()))

        def worker_main(ws):
            ws.setTimeout(
                lambda: rw.acquire_write(lambda: (events.append("writer-in"), rw.release_write())),
                1,
            )

        scope.Worker(worker_main)

        def drop_readers():
            events.append("dropping-readers")
            rw.release_read()
            rw.release_read()

        scope.setTimeout(drop_readers, 20)

    page.run_script(script)
    browser.run(until=ms(100))
    assert events[:2] == [("r1", True), ("r2", True)]
    # the writer only gets in after both readers release
    assert events.index("dropping-readers") < events.index("writer-in")


# ----------------------------------------------------------------------
# deadlock detection (wait-for graph)
# ----------------------------------------------------------------------
def test_wait_for_cycle_detection():
    sim, heap = bare_heap()

    class _StubLock:
        def __init__(self, label, owner):
            self.trace_label = label
            self.owner = owner

    lock1 = _StubLock("lock:a#1", "A")
    lock2 = _StubLock("lock:b#2", "B")
    heap.note_blocked("A", lock2)  # A waits for B's lock
    assert heap.deadlocks == []
    heap.note_blocked("B", lock1)  # B waits for A's lock: cycle closed
    assert len(heap.deadlocks) == 1
    record = heap.deadlocks[0]
    assert "lock:a#1" in record["cycle"] and "lock:b#2" in record["cycle"]
    assert set(record["threads"]) == {"A", "B"}


# ----------------------------------------------------------------------
# memory management
# ----------------------------------------------------------------------
def test_refcount_frees_transitively():
    browser, page = make()
    out = {}

    def script(scope):
        outer = scope.sharedmem.Dict("outer")
        inner = scope.sharedmem.Dict("inner")
        outer.set("child", inner)
        scope.sharedmem.drop(inner)  # now only referenced by outer
        out["inner_alive"] = not inner.cell.freed
        scope.sharedmem.drop(outer)  # frees outer, releasing inner
        out["outer_freed"] = outer.cell.freed
        out["inner_freed"] = inner.cell.freed
        out["live"] = scope.sharedmem.stats()["live_cells"]

    page.run_script(script)
    browser.run(until=ms(10))
    assert out == {"inner_alive": True, "outer_freed": True, "inner_freed": True, "live": 0}


def test_safe_gc_is_stop_the_world_and_spares_adopted_cells():
    out = {}
    tracer = Tracer(enabled=True)

    def script(scope):
        session = scope.sharedmem.Dict("session")
        session.set("token", "s3cret")

        def worker_main(ws):
            ws.sharedmem.adopt(session)
            ws.postMessage("adopted")

        worker = scope.Worker(worker_main)

        def on_adopted(_event):
            scope.sharedmem.drop(session)
            out["stats"] = scope.sharedmem.collect(reason="idle")

        worker.onmessage = on_adopted
        scope.setTimeout(lambda: out.setdefault("token", session.get("token")), 20)

    with capture(tracer):
        browser, page = make()
        page.run_script(script)
        browser.run(until=ms(100))

    # the worker's root kept the cell alive across the collection
    assert out["token"] == "s3cret"
    assert out["stats"]["mode"] == "stw"
    assert out["stats"]["condemned"] == 0
    pauses = [e for e in tracer.events if e.get("name") == "gc.pause"]
    # both attached agents (page main + worker) paused
    assert len(pauses) == 2
    assert {e["args"]["trigger"] for e in pauses} == {True, False}


def test_unsafe_gc_condemns_other_agents_roots():
    browser, page = make("shm_gc_thread_roots")
    out = {}

    def script(scope):
        session = scope.sharedmem.Dict("session")
        session.set("token", "s3cret")

        def worker_main(ws):
            ws.sharedmem.adopt(session)
            # reads well after the async sweep (200 us) has landed
            ws.setTimeout(lambda: out.setdefault("token", session.get("token")), 2)
            ws.postMessage("adopted")

        worker = scope.Worker(worker_main)

        def on_adopted(_event):
            scope.sharedmem.drop(session)
            out["stats"] = scope.sharedmem.collect(reason="idle")

        worker.onmessage = on_adopted

    page.run_script(script)
    with pytest.raises(UseAfterCollectError):
        browser.run(until=ms(100))
    assert out["stats"]["mode"] == "unsafe"
    assert out["stats"]["condemned"] == 1


def test_force_safe_overrides_buggy_collector():
    browser, page = make("shm_gc_thread_roots")
    out = {}

    def script(scope):
        session = scope.sharedmem.Dict("session")
        session.set("token", "s3cret")

        def worker_main(ws):
            ws.sharedmem.adopt(session)
            ws.setTimeout(lambda: out.setdefault("token", session.get("token")), 2)
            ws.postMessage("adopted")

        worker = scope.Worker(worker_main)

        def on_adopted(_event):
            scope.sharedmem.drop(session)
            out["stats"] = scope.sharedmem.collect(force_safe=True, reason="idle")

        worker.onmessage = on_adopted

    page.run_script(script)
    browser.run(until=ms(100))
    assert out["token"] == "s3cret"
    assert out["stats"]["mode"] == "stw"


def test_gc_guard_policy_forces_safe_path():
    """A guards_gc policy (the kernel) neutralises the buggy collector."""
    browser, page = make("shm_gc_thread_roots")
    out = {}

    from repro.runtime.sharedmem import AccessPolicy

    class GuardPolicy(AccessPolicy):
        name = "guard"
        guards_gc = True

    def script(scope):
        scope.sharedmem.set_policy(GuardPolicy())
        session = scope.sharedmem.Dict("session")
        session.set("token", "s3cret")

        def worker_main(ws):
            ws.sharedmem.adopt(session)
            ws.setTimeout(lambda: out.setdefault("token", session.get("token")), 2)
            ws.postMessage("adopted")

        worker = scope.Worker(worker_main)

        def on_adopted(_event):
            scope.sharedmem.drop(session)
            out["stats"] = scope.sharedmem.collect(reason="idle")

        worker.onmessage = on_adopted

    page.run_script(script)
    browser.run(until=ms(100))
    assert out["token"] == "s3cret"
    assert out["stats"]["mode"] == "stw"


def test_cycle_leak_bug_strands_unreachable_cells():
    out = {}
    tracer = Tracer(enabled=True)

    def script(scope):
        a = scope.sharedmem.Dict("a")
        b = scope.sharedmem.Dict("b")
        a.set("peer", b)
        b.set("peer", a)  # refcount cycle
        scope.sharedmem.drop(a)
        scope.sharedmem.drop(b)
        out["stats"] = scope.sharedmem.collect(reason="idle")
        out["live"] = scope.sharedmem.stats()["live_cells"]
        out["leaked"] = scope.sharedmem.stats()["leaked_cells"]

    with capture(tracer):
        browser, page = make("shm_gc_cycle_leak")
        page.run_script(script)
        browser.run(until=ms(10))

    assert out["stats"]["leaked"] == 2
    assert out["live"] == 2  # the cycle survived the sweep
    assert out["leaked"] == 2
    assert any(e.get("name") == "sharedmem.leak" for e in tracer.events)


def test_safe_gc_reclaims_cycles():
    browser, page = make()
    out = {}

    def script(scope):
        a = scope.sharedmem.Dict("a")
        b = scope.sharedmem.Dict("b")
        a.set("peer", b)
        b.set("peer", a)
        scope.sharedmem.drop(a)
        scope.sharedmem.drop(b)
        out["stats"] = scope.sharedmem.collect(reason="idle")
        out["live"] = scope.sharedmem.stats()["live_cells"]

    page.run_script(script)
    browser.run(until=ms(10))
    assert out["stats"]["condemned"] == 2
    assert out["live"] == 0


# ----------------------------------------------------------------------
# counter-thread clock
# ----------------------------------------------------------------------
def test_counter_thread_clock_reads_elapsed_counts():
    browser, page = make()
    out = {}

    def script(scope):
        clock = scope.sharedmem.CounterClock("hacky")
        clock.start(1000.0)
        out["running"] = clock.running

        def later():
            out["value"] = clock.read()
            clock.stop()
            out["stopped"] = not clock.running

        scope.setTimeout(later, 3)

    page.run_script(script)
    browser.run(until=ms(20))
    assert out["running"] is True
    assert out["stopped"] is True
    assert out["value"] == pytest.approx(3000, abs=20)


def test_stats_shape():
    browser, page = make()
    out = {}

    def script(scope):
        scope.sharedmem.Dict("d")
        out["stats"] = scope.sharedmem.stats()

    page.run_script(script)
    browser.run(until=ms(10))
    assert out["stats"] == {
        "live_cells": 1,
        "gc_runs": 0,
        "deadlocks": 0,
        "leaked_cells": 0,
        "agents": 1,
    }
