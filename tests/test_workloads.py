"""Integration tests for the synthetic workloads."""

import pytest

from repro.workloads import (
    CODEPEN_APPS,
    DROMAEO_TESTS,
    SUBTEST_PROFILES,
    alexa_population,
    apps_with_differences,
    generate_site,
    loopscan_target,
    measure_hero_time_ms,
    measure_load_time_ms,
    measure_worker_creation_ms,
    observable_difference,
    run_app,
    run_test,
)


def test_alexa_population_is_seeded_and_sized():
    sites = alexa_population(30, seed=5)
    again = alexa_population(30, seed=5)
    assert len(sites) == 30
    assert [s.host for s in sites] == [s.host for s in again]
    assert [s.total_bytes() for s in sites] == [s.total_bytes() for s in again]
    different = alexa_population(30, seed=6)
    assert [s.total_bytes() for s in sites] != [s.total_bytes() for s in different]


def test_population_has_weight_classes():
    sites = alexa_population(40, seed=1)
    sizes = [s.total_bytes() for s in sites]
    assert max(sizes) > 4 * min(sizes)  # head vs tail spread


def test_generate_site_weights():
    light = generate_site("l.example", 1, "light")
    heavy = generate_site("h.example", 1, "heavy")
    assert heavy.total_bytes() > light.total_bytes()
    assert heavy.dom_nodes > light.dom_nodes


def test_loopscan_targets_differ():
    google = loopscan_target("google")
    youtube = loopscan_target("youtube")
    g_max = max(cost for _delay, cost in google.task_pattern)
    y_max = max(cost for _delay, cost in youtube.task_pattern)
    assert y_max > g_max  # youtube's long tasks are the fingerprint
    with pytest.raises(KeyError):
        loopscan_target("bing")


def test_site_load_time_is_deterministic_per_seed():
    site = alexa_population(3, seed=2)[0]
    a = measure_load_time_ms("legacy-chrome", site, seed=9)
    b = measure_load_time_ms("legacy-chrome", site, seed=9)
    assert a == b
    assert a > 10.0  # an actual load happened


def test_jskernel_load_overhead_is_small():
    site = alexa_population(3, seed=2)[1]
    base = measure_load_time_ms("legacy-chrome", site, seed=3)
    kernel = measure_load_time_ms("jskernel", site, seed=3)
    assert abs(kernel - base) / base < 0.10


def test_tor_loads_much_slower():
    site = alexa_population(3, seed=2)[1]
    base = measure_load_time_ms("legacy-firefox", site, seed=3)
    tor = measure_load_time_ms("tor", site, seed=3)
    assert tor > 2 * base


def test_raptor_subtests_ordered_by_weight():
    google = measure_hero_time_ms("legacy-chrome", "google", seed=1)
    youtube = measure_hero_time_ms("legacy-chrome", "youtube", seed=1)
    assert youtube > google
    assert set(SUBTEST_PROFILES) == {"amazon", "facebook", "google", "youtube"}


def test_raptor_kernel_overhead_modest():
    base = measure_hero_time_ms("legacy-chrome", "amazon", seed=1)
    kernel = measure_hero_time_ms("jskernel", "amazon", seed=1)
    assert abs(kernel - base) / base < 0.15


def test_dromaeo_tests_run_and_pure_compute_has_no_overhead():
    base = run_test("legacy-chrome", "math-cordic")
    kernel = run_test("jskernel", "math-cordic")
    assert base > 0
    assert kernel == pytest.approx(base, rel=0.01)


def test_dromaeo_dom_attr_crosses_kernel_boundary():
    base = run_test("legacy-chrome", "dom-attr")
    kernel = run_test("jskernel", "dom-attr")
    assert (kernel - base) / base > 0.05  # visible interposition cost
    assert len(DROMAEO_TESTS) >= 8


def test_worker_creation_bench_runs():
    base = measure_worker_creation_ms("legacy-chrome", count=4, seed=1)
    kernel = measure_worker_creation_ms("jskernel", count=4, seed=1)
    assert base > 0 and kernel > 0
    assert kernel < base * 2


def test_codepen_apps_all_run_on_legacy():
    for app_name in CODEPEN_APPS:
        report = run_app("legacy-firefox", app_name, seed=1)
        assert report, f"{app_name} produced no report"
        assert any(k.startswith("functional:") for k in report)


def test_codepen_functional_outputs_survive_jskernel():
    for app_name in ("worker-pingpong", "timeout-sequencer", "debounce"):
        legacy = run_app("legacy-firefox", app_name, seed=1)
        kernel = run_app("jskernel", app_name, seed=1)
        for key, value in legacy.items():
            if key.startswith("functional:"):
                assert kernel[key] == value, (app_name, key)


def test_observable_difference_tolerance():
    legacy = {"functional:x": 1, "timing:t": 10.0}
    assert observable_difference(legacy, {"functional:x": 1, "timing:t": 11.0}) == []
    assert observable_difference(legacy, {"functional:x": 2, "timing:t": 10.0}) == ["functional:x"]
    assert observable_difference(legacy, {"functional:x": 1, "timing:t": 30.0}) == ["timing:t"]


def test_apps_with_differences_counts():
    assert apps_with_differences({"a": [], "b": ["x"], "c": ["y", "z"]}) == 2
