"""Unit tests for postMessage channels and transferables."""

import pytest

from repro.errors import SimulationError
from repro.runtime.eventloop import EventLoop
from repro.runtime.heap import SimHeap
from repro.runtime.messaging import make_channel, payload_size
from repro.runtime.sharedbuf import SimArrayBuffer
from repro.runtime.simulator import Simulator


@pytest.fixture
def channel():
    sim = Simulator()
    loop_a = EventLoop(sim, "a", task_dispatch_cost=0)
    loop_b = EventLoop(sim, "b", task_dispatch_cost=0)
    side_a, side_b = make_channel("test", loop_a, loop_b, latency_ns=100_000)
    return sim, side_a, side_b


def test_message_delivered_after_latency(channel):
    sim, side_a, side_b = channel
    seen = []
    side_b.add_handler(lambda event: seen.append((event.data, sim.dispatch_time)))
    side_a.post("hello")
    sim.run()
    assert seen[0][0] == "hello"
    assert seen[0][1] >= 100_000


def test_messages_preserve_order(channel):
    sim, side_a, side_b = channel
    seen = []
    side_b.add_handler(lambda event: seen.append(event.data))
    for i in range(5):
        side_a.post(i)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_bidirectional(channel):
    sim, side_a, side_b = channel
    seen = []
    side_b.add_handler(lambda event: side_b.post(event.data + 1))
    side_a.add_handler(lambda event: seen.append(event.data))
    side_a.post(1)
    sim.run()
    assert seen == [2]


def test_closed_endpoint_drops_messages(channel):
    sim, side_a, side_b = channel
    seen = []
    side_b.add_handler(seen.append)
    side_b.close()
    side_a.post("lost")
    sim.run()
    assert seen == []


def test_messages_in_flight_dropped_when_receiver_closes(channel):
    sim, side_a, side_b = channel
    seen = []
    side_b.add_handler(lambda event: seen.append(event.data))
    side_a.post("in-flight")
    side_b.close()  # closes before the delivery task runs
    sim.run()
    assert seen == []


def test_unconnected_endpoint_raises():
    sim = Simulator()
    loop = EventLoop(sim, "solo")
    from repro.runtime.messaging import MessageEndpoint

    endpoint = MessageEndpoint("solo", loop, 0)
    with pytest.raises(SimulationError):
        endpoint.post("x")


def test_transfer_detaches_sender_and_views_share_store(channel):
    sim, side_a, side_b = channel
    heap = SimHeap()
    buffer = SimArrayBuffer(heap, 64)
    buffer.write(0, 0x7F)
    received = []
    side_b.add_handler(lambda event: received.extend(event.transferred))
    side_a.post("take", transfer=[buffer])
    sim.run()
    assert buffer.detached
    view = received[0]
    assert not view.detached
    assert view.read(0) == 0x7F
    assert view.ptr is buffer.ptr


def test_non_transferable_raises(channel):
    _sim, side_a, _side_b = channel
    with pytest.raises(SimulationError):
        side_a.post("x", transfer=[object()])


def test_remove_and_clear_handlers(channel):
    sim, side_a, side_b = channel
    seen = []
    handler = seen.append
    side_b.add_handler(handler)
    side_b.remove_handler(handler)
    side_a.post("x")
    sim.run()
    assert seen == []


def test_payload_size_estimates():
    assert payload_size(None) == 1
    assert payload_size(3.14) == 8
    assert payload_size("abcd") == 4
    assert payload_size([1, 2]) == 8 + 16
    assert payload_size({"k": "vv"}) == 8 + 1 + 2
    heap = SimHeap()
    assert payload_size(SimArrayBuffer(heap, 256)) == 256


def test_messages_carry_origin(channel):
    sim, side_a, side_b = channel
    seen = []
    side_b.add_handler(lambda event: seen.append(event.origin))
    side_a.post("x", origin="https://sender.example")
    sim.run()
    assert seen == ["https://sender.example"]
