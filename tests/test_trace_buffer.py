"""The compact trace buffer must not change a single exported byte.

The tracer stores events as uniform tuples and materialises the
Chrome-trace dicts lazily (see ``repro.trace.tracer``).  These tests pin
that refactor three ways:

* golden digests: two seeded scenarios captured with the pre-fast-path
  (seed) pipeline — ``tests/golden/trace_digests.json`` — must still
  hash identically;
* a full golden export: the small scenario's Chrome trace is compared
  byte for byte against the committed file;
* buffer mechanics: lazy materialisation is incremental and stable.

Regenerating the goldens is an intentional schema change: re-run the
capture recipe in the digests file's ``_comment`` and update both files
in the same commit.
"""

import hashlib
import json
import os

from repro.attacks import create
from repro.harness import run_table1
from repro.trace import Tracer, capture
from repro.trace.export import dump_chrome_trace, format_timeline

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _digests():
    with open(os.path.join(GOLDEN_DIR, "trace_digests.json"), encoding="utf-8") as f:
        return json.load(f)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def test_small_scenario_exports_byte_identical():
    golden = _digests()["small"]
    tracer = Tracer()
    with capture(tracer):
        create("cache-attack").run("jskernel")
    assert len(tracer) == golden["events"]
    chrome = dump_chrome_trace(tracer)
    assert _sha256(chrome) == golden["chrome_sha256"]
    assert _sha256(format_timeline(tracer)) == golden["timeline_sha256"]
    # and byte-for-byte against the committed export, so a digest-era
    # mismatch is debuggable with a plain diff
    with open(
        os.path.join(GOLDEN_DIR, "trace_cache_attack_jskernel.json"), encoding="utf-8"
    ) as f:
        assert chrome == f.read().rstrip("\n")


def test_matrix_scenario_exports_byte_identical():
    golden = _digests()["matrix"]
    tracer = Tracer()
    with capture(tracer):
        run_table1(
            attacks=["cache-attack", "cve-2018-5092"],
            defenses=["legacy-chrome", "jskernel"],
            cache=None,
        )
    assert len(tracer) == golden["events"]
    assert _sha256(dump_chrome_trace(tracer)) == golden["chrome_sha256"]
    assert _sha256(format_timeline(tracer)) == golden["timeline_sha256"]


# ----------------------------------------------------------------------
# buffer mechanics
# ----------------------------------------------------------------------

def test_events_materialise_lazily_and_incrementally():
    tracer = Tracer()
    pid = tracer.register_run()
    tracer.instant(pid, "main", "a", 10, cat="x")
    tracer.complete(pid, "main", "b", 20, 30, cat="x", args={"k": 1})
    first = tracer.events
    assert [e["name"] for e in first] == ["a", "b"]
    # the property returns the same list object and extends it in place
    tracer.counter(pid, "main", "c", 40, {"v": 2})
    tracer.async_event("b", pid, "main", "d", tracer.next_span_id(), 50)
    again = tracer.events
    assert again is first
    assert [e["name"] for e in again] == ["a", "b", "c", "d"]
    assert len(tracer) == 4


def test_materialised_dicts_keep_seed_shape():
    tracer = Tracer()
    pid = tracer.register_run()
    tracer.complete(pid, "t", "span", 5, 3, cat="c")  # end < start clamps dur
    tracer.instant(pid, "t", "point", 7)
    tracer.async_event("e", pid, "t", "legs", 9, 8)
    complete, instant, async_leg = tracer.events
    assert complete == {
        "ph": "X", "pid": pid, "thread": "t", "name": "span",
        "cat": "c", "ts": 5, "dur": 0, "args": {},
    }
    assert instant["s"] == "t" and "dur" not in instant
    assert async_leg["id"] == 9 and async_leg["ph"] == "e"


def test_counter_values_copied_at_emission():
    tracer = Tracer()
    pid = tracer.register_run()
    values = {"depth": 1}
    tracer.counter(pid, "t", "gauge", 0, values)
    values["depth"] = 99
    assert tracer.events[0]["args"] == {"depth": 1}
