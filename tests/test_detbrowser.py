"""DetBrowser backend: deterministic clocks, delivery and SAB reads.

The defining property — script-observable time is a function of the
operation sequence alone, never of seeds or physical durations — is
checked with hypothesis over seeds and secret workloads.
"""

from hypothesis import given, settings, strategies as st

from repro.attacks import create as create_attack
from repro.defenses import make_browser
from repro.defenses.detbrowser import DetSharedBuffer
from repro.runtime.clock import DeterministicClockPolicy
from repro.runtime.simtime import ms, us
from repro.runtime.simulator import Simulator
from repro.runtime.sharedbuf import SharedCounterBuffer


# ----------------------------------------------------------------------
# the clock policy itself
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(true_ns=st.lists(st.integers(0, 10**12), min_size=1, max_size=20))
def test_deterministic_policy_ignores_true_time(true_ns):
    policy = DeterministicClockPolicy(quantum_ns=1000)
    assert [policy.report(t) for t in true_ns] == [
        (i + 1) * 1000 for i in range(len(true_ns))
    ]


def test_deterministic_policy_default_quantum():
    policy = DeterministicClockPolicy()
    assert policy.report(123_456_789) == us(10)
    assert policy.report(0) == 2 * us(10)


# ----------------------------------------------------------------------
# page-visible clock readings: independent of seed AND secret work
# ----------------------------------------------------------------------
def clock_trace(seed: int, secret_ms: float) -> list:
    browser = make_browser("detbrowser", seed=seed, with_bugs=False)
    page = browser.open_page("https://app.example/")
    trace = []

    def script(scope):
        trace.append(scope.performance.now())
        scope.busy_work(secret_ms)  # secret-dependent computation
        trace.append(scope.performance.now())

        def tick(n):
            trace.append(scope.performance.now())
            if n < 3:
                scope.setTimeout(lambda: tick(n + 1), 1)

        scope.setTimeout(lambda: tick(1), 1)
        trace.append(scope.Date.now())

    page.run_script(script)
    browser.run(until=ms(200))
    return trace


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), secret_ms=st.floats(0.0, 30.0))
def test_clock_readings_independent_of_seed_and_secret(seed, secret_ms):
    assert clock_trace(seed, secret_ms) == clock_trace(0, 0.0)


def test_clock_readings_advance_by_quantum():
    trace = clock_trace(0, 0.0)
    performance = [t for t in trace[:2]]
    # two consecutive reads differ by exactly one 10us quantum, despite
    # arbitrary secret work between them
    assert performance[1] - performance[0] == us(10) / ms(1)


# ----------------------------------------------------------------------
# whole-scenario schedule: independent of the browser seed
# ----------------------------------------------------------------------
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_clock_edge_schedule_seed_independent(seed):
    from repro.analysis.determinism import schedule_for_seed

    assert schedule_for_seed("clock-edge", "detbrowser", seed) == schedule_for_seed(
        "clock-edge", "detbrowser", 0
    )


# ----------------------------------------------------------------------
# SAB counter reads: a pure function of read count
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    rate=st.floats(min_value=1.0, max_value=5000.0),
    true_gaps_ms=st.lists(st.floats(0.1, 50.0), min_size=2, max_size=8),
)
def test_sab_reads_are_pure_function_of_read_count(rate, true_gaps_ms):
    def read_values(gaps):
        sim = Simulator()
        native = SharedCounterBuffer(sim, label="det-test")
        buf = DetSharedBuffer(native, quantum_ns=us(10))
        native.start_increment_activity(rate)
        values = []
        for gap in gaps:
            sim.run(until=sim.now + int(ms(gap)))
            values.append(buf.load())
        return values

    # however long the reader truly waits between loads, the observed
    # counter is reads x quantum x rate — the implicit timer is a metronome
    values = read_values(true_gaps_ms)
    metronome = read_values([0.5] * len(true_gaps_ms))
    assert values == metronome
    expected = [int((i + 1) * us(10) / ms(1) * rate) for i in range(len(values))]
    assert values == expected


def test_sab_writer_side_stays_native():
    sim = Simulator()
    native = SharedCounterBuffer(sim, label="det-test")
    buf = DetSharedBuffer(native, quantum_ns=us(10))
    assert buf._native is native  # sab-timer's writer fast path
    buf.store(41)
    assert not buf.incrementing
    buf.start_increment_activity(10.0)
    assert buf.incrementing
    buf.stop_increment_activity()
    assert not buf.incrementing


# ----------------------------------------------------------------------
# cube-facing verdicts: timing rows defended, CVE surface open
# ----------------------------------------------------------------------
def test_detbrowser_defends_clock_edge():
    assert create_attack("clock-edge").run("detbrowser", seed=0).defended


def test_detbrowser_defends_sab_timer():
    assert create_attack("sab-timer").run("detbrowser", seed=0).defended


def test_detbrowser_does_not_close_the_cve_surface():
    assert not create_attack("cve-2018-5092").run("detbrowser", seed=0).defended
