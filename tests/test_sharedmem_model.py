"""Property tests: shared objects linearize to a sequential reference.

Every SharedDict/SharedArray operation is one indivisible access in
virtual time, so any interleaved execution must be equivalent to the
sequential application of the operations in access order.  The tests
drive two workers through hypothesis-generated op sequences, log each
op's observed result in execution order, then replay the log against a
plain-Python reference model — results and final state must match.

The GC stress test runs three agents through rounds of allocate / adopt
/ drop / collect and asserts the live set stays bounded and no read
ever dangles (the safe collector never frees a rooted cell).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Browser, chrome
from repro.runtime.simtime import ms

KEYS = ["a", "b", "c"]

dict_ops = st.one_of(
    st.tuples(st.just("set"), st.sampled_from(KEYS), st.integers(0, 9)),
    st.tuples(st.just("get"), st.sampled_from(KEYS)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    st.tuples(st.just("has"), st.sampled_from(KEYS)),
    st.tuples(st.just("keys")),
    st.tuples(st.just("size")),
)

array_ops = st.one_of(
    st.tuples(st.just("push"), st.integers(0, 9)),
    st.tuples(st.just("pop")),
    st.tuples(st.just("aset"), st.integers(0, 3), st.integers(0, 9)),
    st.tuples(st.just("aget"), st.integers(0, 3)),
    st.tuples(st.just("asize")),
)


def _apply_shared(d, a, op):
    """Run one op against the shared objects; return its observed result."""
    name, args = op[0], op[1:]
    if name == "set":
        return d.set(*args)
    if name == "get":
        return d.get(*args)
    if name == "delete":
        return d.delete(*args)
    if name == "has":
        return d.has(*args)
    if name == "keys":
        return d.keys()
    if name == "size":
        return d.size
    if name == "push":
        return a.push(*args)
    if name == "pop":
        return a.pop()
    if name == "aset":
        index, value = args
        try:
            return a.set(index, value)
        except IndexError:
            return "index-error"
    if name == "aget":
        return a.get(*args)
    if name == "asize":
        return a.size
    raise AssertionError(f"unknown op {op!r}")


def _apply_reference(d, a, op):
    """The same op against plain dict/list reference state."""
    name, args = op[0], op[1:]
    if name == "set":
        d[args[0]] = args[1]
        return None
    if name == "get":
        return d.get(args[0])
    if name == "delete":
        return d.pop(args[0], "_missing") != "_missing"
    if name == "has":
        return args[0] in d
    if name == "keys":
        return list(d.keys())
    if name == "size":
        return len(d)
    if name == "push":
        a.append(args[0])
        return len(a)
    if name == "pop":
        return a.pop() if a else None
    if name == "aset":
        index, value = args
        if index >= len(a):
            return "index-error"
        a[index] = value
        return None
    if name == "aget":
        return a[args[0]] if args[0] < len(a) else None
    if name == "asize":
        return len(a)
    raise AssertionError(f"unknown op {op!r}")


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(st.one_of(dict_ops, array_ops), min_size=1, max_size=24))
def test_interleaved_ops_match_sequential_reference(ops):
    browser = Browser(profile=chrome(), seed=1)
    page = browser.open_page("https://app.example/")
    log = []

    def script(scope):
        d = scope.sharedmem.Dict("model-dict")
        a = scope.sharedmem.Array("model-array")
        # alternate ops between the two workers; each op lands in its own
        # task so the scheduler interleaves the two streams
        halves = (ops[0::2], ops[1::2])

        def make_worker(my_ops, stagger_ms):
            def worker_main(ws):
                for i, op in enumerate(my_ops):
                    def run(op=op):
                        log.append((op, _apply_shared(d, a, op)))

                    ws.setTimeout(run, stagger_ms + i)

            return worker_main

        scope.Worker(make_worker(halves[0], 1.0))
        scope.Worker(make_worker(halves[1], 1.4))

    page.run_script(script)
    browser.run(until=ms(200))
    assert len(log) == len(ops)

    # replay the observed linearization against the reference model
    ref_dict, ref_array = {}, []
    for op, observed in log:
        expected = _apply_reference(ref_dict, ref_array, op)
        assert observed == expected, f"{op}: observed {observed!r} != {expected!r}"


def test_gc_stress_three_agents_bounded_live_set_no_dangling_reads():
    browser = Browser(profile=chrome(), seed=7)
    page = browser.open_page("https://app.example/")
    rng = random.Random(1234)
    reads = []
    live_samples = []
    ROUNDS = 12
    PER_ROUND = 4

    def script(scope):
        def worker_main(ws):
            def on_share(event):
                obj, expected = event.data
                # borrow/adopt handshake: root it here, then tell the
                # sender its root is no longer load-bearing
                ws.sharedmem.adopt(obj)
                ws.postMessage(obj)

                def read_and_drop():
                    reads.append((obj.get("v"), expected))
                    ws.sharedmem.drop(obj)

                ws.setTimeout(read_and_drop, rng.uniform(0.5, 3.0))

            ws.onmessage = on_share

        workers = [scope.Worker(worker_main), scope.Worker(worker_main)]
        for worker in workers:
            worker.onmessage = lambda event: scope.sharedmem.drop(event.data)

        def round_fn(n):
            for i in range(PER_ROUND):
                d = scope.sharedmem.Dict(f"obj-{n}-{i}")
                value = n * 100 + i
                d.set("v", value)
                if rng.random() < 0.7:
                    # keep main's root until the adoption confirmation
                    workers[i % 2].postMessage((d, value))
                else:
                    scope.sharedmem.drop(d)
            scope.sharedmem.collect(reason=f"round-{n}")
            live_samples.append(scope.sharedmem.stats()["live_cells"])

        for n in range(ROUNDS):
            scope.setTimeout(lambda n=n: round_fn(n), 5 * (n + 1))

    page.run_script(script)
    browser.run(until=ms(200))

    # every read observed the value written before sharing: no dangling
    # reads, no use-after-collect, across all three agents
    assert reads, "stress produced no cross-agent reads"
    for observed, expected in reads:
        assert observed == expected

    # the live set never accumulates: each round's collection reclaims
    # everything except cells still rooted by an in-flight adoption
    assert live_samples
    assert max(live_samples) <= 2 * PER_ROUND
    final = browser.sharedmem.live_cells
    assert final <= PER_ROUND
