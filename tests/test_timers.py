"""Unit tests for setTimeout/setInterval clamping semantics."""

import pytest

from repro.runtime.eventloop import EventLoop
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator
from repro.runtime.timers import NESTING_CLAMP_DEPTH, NESTING_CLAMP_NS, TimerRegistry


@pytest.fixture
def setup():
    sim = Simulator()
    loop = EventLoop(sim, "timer-test", task_dispatch_cost=0)
    registry = TimerRegistry(loop, min_delay_ns=ms(1))
    return sim, loop, registry


def test_timeout_fires_after_delay(setup):
    sim, _loop, registry = setup
    fired = {}
    registry.set_timeout(lambda: fired.__setitem__("at", sim.now), 5)
    sim.run()
    assert fired["at"] >= ms(5)


def test_minimum_delay_clamp(setup):
    sim, _loop, registry = setup
    fired = {}
    registry.set_timeout(lambda: fired.__setitem__("at", sim.now), 0)
    sim.run()
    assert fired["at"] >= ms(1)


def test_timeout_args_passed(setup):
    sim, _loop, registry = setup
    seen = []
    registry.set_timeout(lambda a, b: seen.append((a, b)), 1, "x", "y")
    sim.run()
    assert seen == [("x", "y")]


def test_clear_timeout_prevents_firing(setup):
    sim, _loop, registry = setup
    fired = []
    timer_id = registry.set_timeout(lambda: fired.append(1), 5)
    registry.clear_timeout(timer_id)
    sim.run()
    assert fired == []
    assert registry.active_count == 0


def test_clear_unknown_id_is_noop(setup):
    _sim, _loop, registry = setup
    registry.clear_timeout(99999)


def test_nested_timeouts_clamped_to_4ms(setup):
    sim, _loop, registry = setup
    fire_times = []

    def chain():
        fire_times.append(sim.dispatch_time)
        if len(fire_times) < NESTING_CLAMP_DEPTH + 3:
            registry.set_timeout(chain, 1)

    registry.set_timeout(chain, 1)
    sim.run()
    gaps = [fire_times[i + 1] - fire_times[i] for i in range(len(fire_times) - 1)]
    # early gaps ~1ms, deep gaps clamped to >= 4ms
    assert gaps[0] < NESTING_CLAMP_NS
    assert gaps[-1] >= NESTING_CLAMP_NS


def test_interval_repeats_until_cleared(setup):
    sim, _loop, registry = setup
    count = {"n": 0}

    def tick():
        count["n"] += 1
        if count["n"] == 4:
            registry.clear_interval(interval_id)

    interval_id = registry.set_interval(tick, 2)
    sim.run(until=ms(100))
    assert count["n"] == 4


def test_interval_does_not_queue_extra_firings(setup):
    sim, loop, registry = setup
    fire_times = []

    def tick():
        fire_times.append(sim.dispatch_time)
        if len(fire_times) == 1:
            sim.consume(ms(10))  # block the thread across several periods
        if len(fire_times) >= 3:
            registry.clear_interval(interval_id)

    interval_id = registry.set_interval(tick, 2)
    sim.run(until=ms(100))
    # after the block, firings resume at the interval — no catch-up burst
    assert fire_times[2] - fire_times[1] >= ms(2)


def test_one_shot_removed_from_registry(setup):
    sim, _loop, registry = setup
    registry.set_timeout(lambda: None, 1)
    assert registry.active_count == 1
    sim.run()
    assert registry.active_count == 0
