"""Smoke tests: every example script runs and prints its story."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys, argv=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart_contrasts_clocks(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Legacy Chrome" in out
    assert "12.000 ms" in out  # real clock sees the computation
    assert "0.000 ms" in out  # kernel clock does not


def test_implicit_clock_attack_story(capsys):
    out = run_example("implicit_clock_attack.py", capsys)
    assert "LEAKS the resolution" in out  # legacy line
    assert out.count("reveals nothing") == 1  # kernel line


def test_cve_defense_story(capsys):
    out = run_example("cve_defense.py", capsys)
    assert "EXPLOITED: use-after-free" in out
    assert "safe: abort found no dangling request" in out


def test_custom_policy_story(capsys):
    out = run_example("custom_policy.py", capsys)
    assert "fetch 2: allowed" in out
    assert "quota (2) exceeded" in out


def test_defense_matrix_default_slice(capsys):
    out = run_example("defense_matrix.py", capsys)
    assert "agreement with the paper's Table I: 100.00%" in out


def test_defense_matrix_rejects_unknown_attack(capsys):
    with pytest.raises(SystemExit):
        run_example("defense_matrix.py", capsys, argv=["not-an-attack"])
