"""Tests for extension features beyond Table I: the SAB timer and the CLI."""

from repro.attacks import create
from repro.attacks.registry import EXTENSION_ATTACKS
from repro.attacks.timing.sab_timer import SabTimerAttack


def test_sab_timer_is_registered_as_extension_not_table1():
    from repro.attacks import attack_names

    assert SabTimerAttack in EXTENSION_ATTACKS
    assert "sab-timer" not in attack_names()  # not a Table I row
    assert create("sab-timer").name == "sab-timer"  # but creatable


def test_sab_timer_leaks_on_legacy_browsers():
    result = create("sab-timer").run("legacy-chrome")
    assert result.success, result.detail


def test_sab_timer_leaks_through_coarse_explicit_clocks():
    """The whole point of [12]: SAB bypasses clock clamping (Tor)."""
    result = create("sab-timer").run("tor")
    assert result.success, result.detail


def test_sab_timer_degraded_below_grid_by_jskernel():
    """Kernel slot pacing: sub-millisecond secrets are indistinguishable."""
    result = create("sab-timer").run("jskernel")
    assert result.defended, result.detail


def test_sab_timer_resolution_degrades_to_grid():
    """Coarse (multi-grid) differences survive — degradation, not magic.

    This is the honest boundary DESIGN.md §7 documents.
    """
    attack = SabTimerAttack()
    attack.secrets_coarse = True
    # measure two multi-millisecond secrets manually
    deltas = {}
    for label, duration in (("a", 4.0), ("b", 9.0)):
        from repro.attacks.timing import sab_timer

        original = dict(sab_timer.SECRETS_MS)
        sab_timer.SECRETS_MS = {"short": duration, "long": duration}
        try:
            deltas[label] = attack.run_trial("jskernel", "short", seed=1)
        finally:
            sab_timer.SECRETS_MS = original
    assert deltas["b"] > deltas["a"]  # coarse signal survives the grid


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_lists(capsys):
    from repro.__main__ import main

    assert main(["attacks"]) == 0
    out = capsys.readouterr().out
    assert "cve-2018-5092" in out and "sab-timer" in out

    assert main(["defenses"]) == 0
    out = capsys.readouterr().out
    assert "jskernel" in out and "fuzzyfox" in out


def test_cli_help_and_unknown(capsys):
    from repro.__main__ import main

    assert main(["--help"]) == 0
    assert main(["no-such-command"]) == 1
    assert main([]) == 1


def test_cli_table2_runs(capsys):
    from repro.__main__ import main

    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "jskernel" in out and "10.00" in out
