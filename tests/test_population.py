"""Tests for the seeded population model (repro.workloads.population).

Three properties carry the subsystem: every page is a pure function of
``(rank, seed)`` so workers regenerate instead of receiving; the model
fast path (``site_stats`` + closed form) equals the full description
path exactly; and a sweep's resident memory is bounded by the stream
window + sketches, independent of population size — verified here with
a 50k-vs-5k tracemalloc comparison, the PR's acceptance test.
"""

import tracemalloc

import pytest

from repro.runtime.rng import hash_seed
from repro.workloads.population import (
    ARCHETYPES,
    DEFAULT_BROWSER_MIX,
    PopulationAggregate,
    PopulationModel,
    archetype_for_rank,
    band_for_rank,
    config_for_rank,
    estimate_load_ms,
    page_for,
    population_sweep,
    run_population_page,
    session_stream,
    zipf_rank,
)
from repro.workloads.sites import generate_site, site_stats


# ----------------------------------------------------------------------
# purity: pages are functions of (rank, seed)
# ----------------------------------------------------------------------
def test_page_for_is_pure_and_seeded():
    one = page_for(1234, seed=7)
    two = page_for(1234, seed=7)
    assert one.host == two.host
    assert [r.size_bytes for r in one.resources] == [r.size_bytes for r in two.resources]
    assert one.task_pattern == two.task_pattern
    assert one.dom_nodes == two.dom_nodes
    other = page_for(1234, seed=8)
    assert (other.host, other.dom_nodes, other.task_pattern) != (
        one.host, one.dom_nodes, one.task_pattern
    )


def test_page_host_carries_archetype_and_rank():
    page = page_for(42, seed=0)
    archetype = archetype_for_rank(42, 0)
    assert page.host == f"{archetype}0000042.example"


@pytest.mark.parametrize("host,seed,weight", [
    ("news0000001.example", 11, "heavy"),
    ("docs0001234.example", 0, "light"),
    ("shop0099999.example", 5, "medium"),
])
def test_site_stats_matches_the_generated_site(host, seed, weight):
    site = generate_site(host, seed, weight)
    total, script, nodes, task_ms = site_stats(host, seed, weight)
    assert total == site.total_bytes()
    assert script == sum(r.size_bytes for r in site.resources if r.kind == "script")
    assert nodes == site.dom_nodes
    assert task_ms == pytest.approx(sum(cost for _t, cost in site.task_pattern))


@pytest.mark.parametrize("rank", [0, 7, 999, 43_210, 999_999])
def test_model_mode_equals_the_closed_form_over_the_full_page(rank):
    seed = 3
    outcome = run_population_page(rank, seed)
    page = page_for(rank, seed)
    archetype = archetype_for_rank(rank, seed)
    config = config_for_rank(rank, seed)
    visit_seed = hash_seed(seed, f"pop:visit:{rank}:{config}:0")
    expected = estimate_load_ms(page, config, visit_seed, archetype)
    assert outcome["load_ms"] == round(expected, 3)
    assert outcome["archetype"] == archetype
    assert outcome["config"] == config


def test_sim_mode_runs_the_simulator_and_stays_deterministic():
    one = run_population_page(3, seed=1, size=100, mode="sim")
    two = run_population_page(3, seed=1, size=100, mode="sim")
    assert one == two
    assert one["load_ms"] > 0


# ----------------------------------------------------------------------
# the rank distribution
# ----------------------------------------------------------------------
def test_band_boundaries():
    assert band_for_rank(0, 1000) == "head"
    assert band_for_rank(9, 1000) == "head"
    assert band_for_rank(10, 1000) == "torso"
    assert band_for_rank(199, 1000) == "torso"
    assert band_for_rank(200, 1000) == "tail"
    assert band_for_rank(999, 1000) == "tail"
    with pytest.raises(ValueError):
        band_for_rank(1000, 1000)


def test_browser_mix_is_respected_in_aggregate():
    size = 2000
    counts = {}
    for rank in range(size):
        config = config_for_rank(rank, seed=0)
        counts[config] = counts.get(config, 0) + 1
    for config, share in DEFAULT_BROWSER_MIX:
        assert counts.get(config, 0) == pytest.approx(share * size, rel=0.25), config


def test_archetypes_follow_the_band_mix():
    size = 5000
    tail = {}
    for rank in range(size // 5, size):  # the tail band
        arch = archetype_for_rank(rank, seed=0, size=size)
        tail[arch] = tail.get(arch, 0) + 1
    # blogs dominate the tail (weight 4 of 10 in BAND_MIX["tail"])
    assert tail["blog"] == max(tail.values())
    assert set(tail) <= set(ARCHETYPES)


def test_zipf_rank_is_log_uniform_and_clamped():
    assert zipf_rank(0.0, 1_000_000) == 0
    assert zipf_rank(1.0, 1_000_000) == 999_999
    assert zipf_rank(0.5, 1_000_000) == 999  # sqrt(1e6) - 1
    # the head is visited far more often than uniform would give it
    hits = sum(1 for i in range(1000) if zipf_rank(i / 1000.0, 1_000_000) < 10_000)
    assert hits > 300
    with pytest.raises(ValueError):
        zipf_rank(0.5, 0)


# ----------------------------------------------------------------------
# sessions
# ----------------------------------------------------------------------
def test_session_stream_is_deterministic_with_monotone_arrivals():
    model = PopulationModel(size=10_000, seed=9)
    first = list(session_stream(model, count=50))
    again = list(session_stream(model, count=50))
    assert first == again
    arrivals = [s.arrival_s for s in first]
    assert arrivals == sorted(arrivals)
    assert all(s.pages and min(s.pages) >= 0 and max(s.pages) < 10_000 for s in first)
    assert {s.config for s in first} <= {name for name, _ in DEFAULT_BROWSER_MIX}


def test_session_stream_is_a_prefix_stable_renewal_process():
    model = PopulationModel(size=10_000, seed=9)
    short = list(session_stream(model, count=10))
    long = list(session_stream(model, count=25))
    assert long[:10] == short


# ----------------------------------------------------------------------
# bounded-memory aggregation
# ----------------------------------------------------------------------
def test_sweep_report_balances_and_merges_by_config():
    report = population_sweep(400, seed=1)
    assert report["pages"] == 400
    assert report["computed"] == 400
    assert report["errors"] == []
    assert sum(c["count"] for c in report["configs"].values()) == 400
    assert sum(a["count"] for a in report["archetypes"].values()) == 400
    for summary in report["configs"].values():
        assert summary["mean_ms"] > 0


def test_sweep_is_identical_serial_and_parallel():
    serial = population_sweep(120, seed=4)
    pooled = population_sweep(120, seed=4, parallel=2)
    assert pooled == serial


def test_aggregate_caps_the_error_list():
    class Boom:
        def __init__(self, i):
            self.ok = False
            self.cached = False
            self.error = "boom"
            self.cell = type("C", (), {"label": lambda self: f"cell-{i}"})()

    aggregate = PopulationAggregate(max_errors=3)
    for i in range(10):
        aggregate.add(Boom(i))
    report = aggregate.report()
    assert len(report["errors"]) == 3
    assert report["error_overflow"] == 7
    assert report["pages"] == 0


# ----------------------------------------------------------------------
# acceptance: resident memory is flat in the population size
# ----------------------------------------------------------------------
def _traced_peak(size):
    tracemalloc.start()
    try:
        report = population_sweep(size, seed=0)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert report["pages"] == size
    return peak


def test_sweep_memory_is_bounded_independent_of_population_size():
    population_sweep(500, seed=0)  # warm imports/caches outside the trace
    small_peak = _traced_peak(5_000)
    large_peak = _traced_peak(50_000)
    # 10x the pages must not cost 10x the memory: the stream window and
    # the sketches are the only resident state, so the peaks stay within
    # a small constant factor of each other.
    assert large_peak < small_peak * 3, (small_peak, large_peak)
