"""Unit tests for the per-thread event loop."""

import pytest

from repro.errors import SimulationError
from repro.runtime.eventloop import EventLoop
from repro.runtime.simulator import Simulator
from repro.runtime.task import Microtask, Task, TaskSource


def make_loop(dispatch_cost=0):
    sim = Simulator()
    return sim, EventLoop(sim, "test", task_dispatch_cost=dispatch_cost)


def test_tasks_run_in_ready_order():
    sim, loop = make_loop()
    order = []
    loop.post(lambda: order.append("b"), delay=200)
    loop.post(lambda: order.append("a"), delay=100)
    sim.run()
    assert order == ["a", "b"]


def test_busy_task_delays_later_tasks():
    sim, loop = make_loop()
    times = {}
    loop.post(lambda: sim.consume(5_000_000), delay=0, label="busy")
    loop.post(lambda: times.__setitem__("second", sim.now), delay=1_000_000)
    sim.run()
    # the second task was ready at 1ms but the thread was busy until 5ms
    assert times["second"] >= 5_000_000


def test_task_cost_is_charged_before_callback():
    sim, loop = make_loop()
    seen = {}
    loop.post(lambda: seen.__setitem__("t", sim.now), cost=3_000_000)
    sim.run()
    assert seen["t"] == 3_000_000


def test_dispatch_cost_applies_to_every_task():
    sim, loop = make_loop(dispatch_cost=1_000)
    seen = {}
    loop.post(lambda: seen.__setitem__("t", sim.now))
    sim.run()
    assert seen["t"] == 1_000


def test_cancelled_task_skipped():
    sim, loop = make_loop()
    ran = []
    task = loop.post(lambda: ran.append(1))
    task.cancel()
    loop.post(lambda: ran.append(2))
    sim.run()
    assert ran == [2]


def test_microtasks_run_at_end_of_current_task():
    sim, loop = make_loop()
    order = []

    def task():
        loop.post(lambda: order.append("next-macrotask"))
        loop.post_microtask(Microtask(lambda: order.append("micro-1")))
        loop.post_microtask(Microtask(lambda: order.append("micro-2")))
        order.append("sync")

    loop.post(task)
    sim.run()
    assert order == ["sync", "micro-1", "micro-2", "next-macrotask"]


def test_microtask_posted_while_idle_still_runs():
    sim, loop = make_loop()
    ran = []
    loop.post_microtask(Microtask(lambda: ran.append(1)))
    sim.run()
    assert ran == [1]


def test_microtask_chain_can_starve_macrotasks_within_budget():
    sim, loop = make_loop()
    count = {"n": 0}

    def chain():
        count["n"] += 1
        if count["n"] < 50:
            loop.post_microtask(Microtask(chain))

    loop.post(lambda: loop.post_microtask(Microtask(chain)))
    sim.run()
    assert count["n"] == 50


def test_runaway_microtask_chain_raises():
    sim, loop = make_loop()

    def chain():
        loop.post_microtask(Microtask(chain))

    loop.post(lambda: loop.post_microtask(Microtask(chain)))
    with pytest.raises(SimulationError):
        sim.run()


def test_stop_clears_queue_and_refuses_new_work():
    sim, loop = make_loop()
    ran = []
    loop.post(lambda: ran.append(1), delay=1_000)
    loop.stop()
    loop.post(lambda: ran.append(2))
    sim.run()
    assert ran == []
    assert loop.stopped
    assert loop.idle


def test_trace_records_durations():
    sim, loop = make_loop()
    loop.record_trace = True
    loop.post(lambda: sim.consume(2_000_000), delay=1_000_000, label="work")
    sim.run()
    assert len(loop.trace) == 1
    record = loop.trace[0]
    assert record.label == "work"
    assert record.start == 1_000_000
    assert record.duration == 2_000_000


def test_task_observers_fire():
    sim, loop = make_loop()
    seen = []
    loop.task_observers.append(lambda task, start, end: seen.append((task.label, start, end)))
    loop.post(lambda: None, label="obs-me")
    sim.run()
    assert seen and seen[0][0] == "obs-me"


def test_pending_tasks_counts_only_live():
    sim, loop = make_loop()
    task = loop.post(lambda: None, delay=1_000)
    loop.post(lambda: None, delay=2_000)
    assert loop.pending_tasks == 2
    task.cancel()
    assert loop.pending_tasks == 1


def test_task_source_recorded():
    task = Task(lambda: None, source=TaskSource.TIMER)
    assert task.source is TaskSource.TIMER
    assert task.label == "<lambda>"
