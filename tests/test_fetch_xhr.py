"""Unit tests for fetch, AbortController and XMLHttpRequest."""

import random

import pytest

from repro.errors import SecurityError, UseAfterFreeError
from repro.runtime.eventloop import EventLoop
from repro.runtime.fetchapi import AbortController, AbortError, FetchManager
from repro.runtime.heap import SimHeap
from repro.runtime.network import SimNetwork
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator
from repro.runtime.xhr import XMLHttpRequest


@pytest.fixture
def env():
    sim = Simulator()
    loop = EventLoop(sim, "fetch-test", task_dispatch_cost=0)
    network = SimNetwork(random.Random(1), jitter_ns=0, bandwidth_bytes_per_ms=1_000)
    heap = SimHeap()
    base = parse_url("https://app.example/")
    manager = FetchManager(loop, network, heap, base, base.origin)
    return sim, loop, network, heap, manager


def test_fetch_resolves_with_response(env):
    sim, _loop, network, _heap, manager = env
    network.host_simple(parse_url("https://app.example/data.json"), 1_000, body="payload")
    results = []
    manager.fetch("/data.json").then(lambda r: results.append(r))
    sim.run()
    assert results[0].ok
    assert results[0].body == "payload"


def test_fetch_rejects_on_404(env):
    sim, _loop, _network, _heap, manager = env
    errors = []
    manager.fetch("/missing").catch(errors.append)
    sim.run()
    assert errors and "404" in str(errors[0])


def test_fetch_releases_native_request_on_completion(env):
    sim, _loop, network, heap, manager = env
    network.host_simple(parse_url("https://app.example/x"), 100)
    manager.fetch("/x")
    assert len(manager.outstanding) == 1
    sim.run()
    assert manager.outstanding == []
    assert heap.freed_count == 1


def test_abort_cancels_in_flight_fetch(env):
    sim, loop, network, _heap, manager = env
    network.host_simple(parse_url("https://app.example/slow"), 50_000)
    controller = AbortController()
    outcomes = []
    manager.fetch("/slow", {"signal": controller.signal}).then(
        lambda r: outcomes.append("ok"), lambda e: outcomes.append(type(e).__name__)
    )
    loop.post(lambda: controller.abort(), delay=ms(2))
    sim.run()
    assert outcomes == ["AbortError"]


def test_abort_before_start_rejects_immediately(env):
    sim, _loop, _network, _heap, manager = env
    controller = AbortController()
    controller.abort()
    outcomes = []
    manager.fetch("/x", {"signal": controller.signal}).catch(
        lambda e: outcomes.append(type(e).__name__)
    )
    sim.run()
    assert outcomes == ["AbortError"]


def test_abort_in_flight_delivers_no_network_task(env):
    """After an abort, the cancelled response must never be dispatched.

    This is the exact precondition of the CVE-2018-5092 lifecycle bug:
    a NETWORK task delivered for an aborted request would run a callback
    against a request object whose teardown already began.
    """
    sim, loop, network, _heap, manager = env
    network.host_simple(parse_url("https://app.example/slow"), 500_000)
    controller = AbortController()
    events = []
    manager.fetch("/slow", {"signal": controller.signal}).then(
        lambda r: events.append(("resolved", sim.now)),
        lambda e: events.append(("rejected", sim.now)),
    )
    dispatched = []
    loop.task_observers.append(
        lambda task, start, end: dispatched.append((task.source, task.label, start))
    )
    abort_at = ms(2)
    loop.post(lambda: controller.abort(), delay=abort_at)
    sim.run()

    from repro.runtime.task import TaskSource

    network_tasks = [d for d in dispatched if d[0] is TaskSource.NETWORK]
    assert network_tasks == [], f"NETWORK task dispatched after abort: {network_tasks}"
    # the promise rejected (abort path) and nothing resolved afterwards
    assert [kind for kind, _t in events] == ["rejected"]


def test_abort_in_flight_runs_no_post_abort_callback(env):
    sim, loop, network, _heap, manager = env
    network.host_simple(parse_url("https://app.example/slow"), 500_000)
    controller = AbortController()
    post_abort_calls = []
    aborted_at = {}

    def on_response(_response):
        post_abort_calls.append(sim.now)

    manager.fetch("/slow", {"signal": controller.signal}).then(on_response, lambda e: None)
    loop.post(
        lambda: (controller.abort(), aborted_at.__setitem__("t", sim.now)),
        delay=ms(1),
    )
    sim.run()
    assert "t" in aborted_at
    assert post_abort_calls == []
    # the in-flight request is gone from the network's tracking
    assert all(r.cancelled or r.completed for r in network.inflight)


def test_clean_release_unregisters_from_signal(env):
    sim, _loop, network, _heap, manager = env
    network.host_simple(parse_url("https://app.example/x"), 100)
    controller = AbortController()
    manager.fetch("/x", {"signal": controller.signal})
    assert len(controller.signal.registered_requests) == 1
    sim.run()
    assert controller.signal.registered_requests == []
    controller.abort()  # nothing dangling: safe


def test_buggy_release_leaves_dangling_registration(env):
    """The CVE-2018-5092 substrate: free without unregistering."""
    sim, _loop, network, _heap, manager = env
    network.host_simple(parse_url("https://app.example/slow"), 50_000)
    controller = AbortController()
    manager.fetch("/slow", {"signal": controller.signal})
    manager.release_all(buggy=True)
    with pytest.raises(UseAfterFreeError):
        controller.abort(cve="CVE-2018-5092")


def test_clean_release_all_is_safe(env):
    sim, _loop, network, _heap, manager = env
    network.host_simple(parse_url("https://app.example/slow"), 50_000)
    controller = AbortController()
    manager.fetch("/slow", {"signal": controller.signal})
    manager.release_all(buggy=False)
    controller.abort()  # unregistered: no dereference happens


# ----------------------------------------------------------------------
# XHR
# ----------------------------------------------------------------------

def make_xhr(env, enforce_sop=True):
    sim, loop, network, _heap, _manager = env
    base = parse_url("https://app.example/")
    return sim, network, XMLHttpRequest(loop, network, base, base.origin, enforce_sop=enforce_sop)


def test_xhr_same_origin_succeeds(env):
    sim, network, xhr = make_xhr(env)
    network.host_simple(parse_url("https://app.example/api"), 100, body="data")
    results = []
    xhr.open("GET", "/api")
    xhr.onload = lambda: results.append(xhr.response_text)
    xhr.send()
    sim.run()
    assert results == ["data"]
    assert xhr.status == 200


def test_xhr_cross_origin_blocked_by_sop(env):
    sim, network, xhr = make_xhr(env, enforce_sop=True)
    network.host_simple(parse_url("https://victim.example/api"), 100, body="secret")
    xhr.open("GET", "https://victim.example/api")
    with pytest.raises(SecurityError):
        xhr.send()


def test_xhr_cross_origin_allowed_with_bug(env):
    sim, network, xhr = make_xhr(env, enforce_sop=False)
    network.host_simple(parse_url("https://victim.example/api"), 100, body="secret")
    results = []
    xhr.open("GET", "https://victim.example/api")
    xhr.onload = lambda: results.append(xhr.response_text)
    xhr.send()
    sim.run()
    assert results == ["secret"]


def test_xhr_send_before_open_raises(env):
    _sim, _network, xhr = make_xhr(env)
    with pytest.raises(SecurityError):
        xhr.send()


def test_xhr_onerror_on_404(env):
    sim, _network, xhr = make_xhr(env)
    outcomes = []
    xhr.open("GET", "/nope")
    xhr.onerror = lambda: outcomes.append(xhr.status)
    xhr.send()
    sim.run()
    assert outcomes == [404]
