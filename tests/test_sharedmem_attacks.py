"""End-to-end tests for the shared-memory attack scenarios.

Pins the four new race scenarios' verdicts across the defense cube, the
race-analysis findings they produce, the counter-thread-clock bypass of
clock-interposition defenses (the paper-extending finding in
``EXPECTED_BYPASSES``), and the deadlock fuzz-oracle → ddmin → replay
chain.
"""

import pytest

from repro.analysis.races import analyze_scenario
from repro.attacks import create
from repro.attacks.expected import EXPECTED_BYPASSES
from repro.attacks.registry import EXTENSION_ATTACKS, all_attack_names, attack_names
from repro.explore.campaign import run_fuzz_cell
from repro.explore.minimize import minimize_witness, replay_witness
from repro.explore.oracles import evaluate_run
from repro.harness.cube import run_cube

SHM_SCENARIOS = [
    "shm-toctou",
    "shm-toctou-locked",
    "lock-order-deadlock",
    "gc-vs-mutator",
    "counter-thread-clock",
]

CUBE_DEFENSES = ["legacy-chrome", "fuzzyfox", "jskernel", "detbrowser"]


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def test_scenarios_registered_as_extensions():
    names = [cls.name for cls in EXTENSION_ATTACKS]
    for scenario in SHM_SCENARIOS:
        assert scenario in names
        assert scenario in all_attack_names()
        assert scenario not in attack_names()  # not Table I rows
        assert create(scenario).name == scenario


# ----------------------------------------------------------------------
# the cube: verdicts + overhead per cell
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shm_cube():
    return run_cube(attacks=SHM_SCENARIOS, defenses=CUBE_DEFENSES)


def test_cube_verdict_matrix(shm_cube):
    expected = {
        # kernel mediation provides policy + pacing, not atomicity: the
        # unlocked TOCTOU stays exploitable under every browser defense
        "shm-toctou": {
            "legacy-chrome": False, "fuzzyfox": False,
            "jskernel": False, "detbrowser": False,
        },
        # the fix is the locking discipline, everywhere
        "shm-toctou-locked": {
            "legacy-chrome": True, "fuzzyfox": True,
            "jskernel": True, "detbrowser": True,
        },
        # only the kernel's lock-ordering policy prevents the cycle
        "lock-order-deadlock": {
            "legacy-chrome": False, "fuzzyfox": False,
            "jskernel": True, "detbrowser": False,
        },
        # only the kernel guards the GC entry point (guards_gc)
        "gc-vs-mutator": {
            "legacy-chrome": False, "fuzzyfox": False,
            "jskernel": True, "detbrowser": False,
        },
        # clock-fuzzing never sees the counter; memory mediation does
        "counter-thread-clock": {
            "legacy-chrome": False, "fuzzyfox": False,
            "jskernel": True, "detbrowser": True,
        },
    }
    assert shm_cube.verdicts == expected


def test_cube_cells_carry_overhead_profiles(shm_cube):
    for attack in SHM_SCENARIOS:
        for defense in CUBE_DEFENSES:
            profile = shm_cube.overhead[attack][defense]
            assert "queue_delay" in profile, (attack, defense)


def test_deadlock_detail_names_the_cycle(shm_cube):
    detail = shm_cube.details["lock-order-deadlock"]["legacy-chrome"]
    assert detail.startswith("deadlock:")
    assert "lock:" in detail
    blocked = shm_cube.details["lock-order-deadlock"]["jskernel"]
    assert blocked.startswith("blocked:")
    assert "lock-order policy" in blocked


# ----------------------------------------------------------------------
# the paper-extending finding: counter-thread clock bypass
# ----------------------------------------------------------------------
def test_counter_thread_clock_bypass_matrix():
    """Pinned expected-failure: clock-interposition defenses that leave
    shared-memory accesses native are measurably bypassed."""
    for defense, should_defend in EXPECTED_BYPASSES["counter-thread-clock"].items():
        result = create("counter-thread-clock").run(defense)
        assert result.defended == should_defend, (
            f"{defense}: expected defended={should_defend}, got {result.detail}"
        )


def test_counter_thread_clock_beats_legacy_at_full_accuracy():
    result = create("counter-thread-clock").run("legacy-chrome")
    assert result.success
    assert "accuracy=1.00" in result.detail


# ----------------------------------------------------------------------
# race analysis pins (the lock-set-aware detector)
# ----------------------------------------------------------------------
def test_toctou_racy_variant_is_flagged():
    report = analyze_scenario("shm-toctou", "legacy-chrome", seed=0)
    patterns = {
        race["pattern"] for run in report["runs"] for race in run["races"]
    }
    assert report["race_count"] > 0
    assert "write-write" in patterns


def test_toctou_locked_variant_has_zero_races():
    """The false-positive pin: lock release→acquire edges order the
    critical sections, so the locked scenario must be race-free."""
    report = analyze_scenario("shm-toctou-locked", "legacy-chrome", seed=0)
    assert report["race_count"] == 0
    assert report["outcome"] == "no overdraft: balance=30"


def test_gc_vs_mutator_races_classify_as_use_after_collect():
    report = analyze_scenario("gc-vs-mutator", "legacy-chrome", seed=0)
    patterns = {
        race["pattern"] for run in report["runs"] for race in run["races"]
    }
    assert patterns == {"use-after-collect"}
    assert report["outcome"].startswith("crash: use-after-collect")


# ----------------------------------------------------------------------
# fuzz oracles: deadlock and shared-leak verdicts
# ----------------------------------------------------------------------
def test_deadlock_oracle_fires_on_nominal_schedule():
    verdict = evaluate_run("lock-order-deadlock", "legacy-chrome", 0)
    assert "deadlock" in verdict["failures"]
    assert verdict["deadlocks"] == 1
    assert verdict["interesting"]


def test_deadlock_oracle_silent_under_kernel_ordering():
    verdict = evaluate_run("lock-order-deadlock", "jskernel", 0)
    assert "deadlock" not in verdict["failures"]
    assert verdict["deadlocks"] == 0


def test_deadlock_fuzz_witness_minimizes_and_replays():
    """The acceptance chain: a fixed-seed campaign shard finds a seeded
    deadlock witness, ddmin strips the irrelevant perturbations, and the
    minimized witness replays to the same signature."""
    shard = run_fuzz_cell(
        "lock-order-deadlock", "legacy-chrome", seed=0, start=0, count=2
    )
    assert shard["witnesses"], "no deadlock witness found"
    witness = shard["witnesses"][0]
    assert "deadlock" in witness["verdict"]["failures"]

    minimized = minimize_witness(witness)
    assert minimized["signature"] == witness["verdict"]["failures"]
    assert "deadlock" in minimized["verdict"]["failures"]
    assert minimized["minimized"]["atoms_after"] <= minimized["minimized"]["atoms_before"]

    replayed = replay_witness(minimized)
    assert replayed["failures"] == minimized["verdict"]["failures"]


def test_shared_leak_oracle_counts_leak_instants():
    from repro.explore.oracles import sharedmem_leaks

    events = [
        {"name": "sharedmem.leak"},
        {"name": "gc.sweep"},
        {"name": "sharedmem.leak"},
    ]
    assert sharedmem_leaks(events) == 2
