"""Tests for ExperimentEngine.stream: the bounded-window streaming path.

The contract: ``stream`` yields exactly what ``run`` returns, in the
same submission order and with the same merged telemetry, while never
materialising more than a bounded in-flight window of the cell
iterator — the property the population sweeps and serve mode rest on.
"""

import json

from repro.harness import Cell, ExperimentEngine, ResultCache
from repro.trace import Tracer, capture
from repro.workloads.population import population_cells


def cells_for(n, seed=0):
    return list(population_cells(n, seed=seed))


def as_json(results):
    return json.dumps(
        [
            {
                "label": r.cell.label(),
                "ok": r.ok,
                "payload": r.payload,
                "error": r.error,
            }
            for r in results
        ],
        sort_keys=True,
    )


class CountingCells:
    """A cell iterator that counts how far the consumer pulled it."""

    def __init__(self, n, seed=0):
        self.source = population_cells(n, seed=seed)
        self.pulled = 0

    def __iter__(self):
        for cell in self.source:
            self.pulled += 1
            yield cell


# ----------------------------------------------------------------------
# stream == run, byte for byte
# ----------------------------------------------------------------------
def test_stream_equals_run_serially():
    batch = cells_for(40)
    ran = ExperimentEngine().run(batch)
    streamed = list(ExperimentEngine().stream(iter(batch)))
    assert as_json(streamed) == as_json(ran)


def test_stream_equals_run_with_a_pool():
    batch = cells_for(40)
    ran = ExperimentEngine().run(batch)
    engine = ExperimentEngine(workers=2, chunk_size=4)
    streamed = list(engine.stream(iter(batch)))
    assert as_json(streamed) == as_json(ran)
    assert engine.computed == len(batch)


def test_stream_counts_errors_per_cell_without_dying():
    batch = cells_for(5) + [Cell("population", {"rank": 0, "seed": 0, "size": 5,
                                                "mode": "bogus"})]
    engine = ExperimentEngine()
    results = list(engine.stream(iter(batch)))
    assert [r.ok for r in results] == [True] * 5 + [False]
    assert "bogus" in results[-1].error
    assert engine.errors == 1


# ----------------------------------------------------------------------
# bounded window: the iterator is pulled lazily
# ----------------------------------------------------------------------
def test_serial_stream_pulls_one_cell_per_result():
    counting = CountingCells(1000)
    stream = ExperimentEngine().stream(counting)
    for _ in range(5):
        next(stream)
    assert counting.pulled == 5
    stream.close()


def test_pool_stream_keeps_the_window_bounded():
    counting = CountingCells(1000)
    engine = ExperimentEngine(workers=2, chunk_size=2)
    stream = engine.stream(counting, window=3)
    first = next(stream)
    assert first.ok
    # at most (window + a chunk being assembled + one yielded) chunks of
    # cells have been admitted; nowhere near the thousand-cell iterator
    assert counting.pulled <= (3 + 2) * 2
    stream.close()


def test_closing_the_stream_stops_admission():
    counting = CountingCells(1000)
    engine = ExperimentEngine(workers=2, chunk_size=2)
    consumed = 0
    for _result in engine.stream(counting, window=2):
        consumed += 1
        if consumed == 4:
            break  # closes the generator
    pulled_at_break = counting.pulled
    assert pulled_at_break < 50
    # nothing pulls the iterator after the generator closed
    assert counting.pulled == pulled_at_break


# ----------------------------------------------------------------------
# cache interaction
# ----------------------------------------------------------------------
def test_stream_serves_a_warm_rerun_from_cache(tmp_path):
    batch = cells_for(12)
    cold = ExperimentEngine(cache=ResultCache(tmp_path))
    first = list(cold.stream(iter(batch)))
    assert cold.computed == 12 and cold.cache_hits == 0

    warm = ExperimentEngine(cache=ResultCache(tmp_path))
    second = list(warm.stream(iter(batch)))
    assert warm.computed == 0 and warm.cache_hits == 12
    assert as_json(second) == as_json(first)
    assert all(r.cached for r in second)


def test_pool_stream_preserves_order_with_mixed_hits_and_misses(tmp_path):
    batch = cells_for(20)
    seed_engine = ExperimentEngine(cache=ResultCache(tmp_path))
    # warm only the odd cells, so the pool sees interleaved hits/misses
    list(seed_engine.stream(c for i, c in enumerate(batch) if i % 2))

    engine = ExperimentEngine(workers=2, chunk_size=2, cache=ResultCache(tmp_path))
    results = list(engine.stream(iter(batch)))
    assert [r.cell.params["rank"] for r in results] == [
        c.params["rank"] for c in batch
    ]
    assert engine.cache_hits == 10 and engine.computed == 10
    assert as_json(results) == as_json(ExperimentEngine().run(batch))


# ----------------------------------------------------------------------
# telemetry: streamed metrics match across worker counts
# ----------------------------------------------------------------------
def test_stream_metrics_are_identical_across_worker_counts():
    batch = cells_for(24)
    serial_tracer, pool_tracer = Tracer(), Tracer()
    with capture(serial_tracer):
        list(ExperimentEngine().stream(iter(batch)))
    with capture(pool_tracer):
        list(ExperimentEngine(workers=2, chunk_size=4).stream(iter(batch)))
    serial = serial_tracer.metrics.snapshot()
    pooled = pool_tracer.metrics.snapshot()
    assert serial["counters"]["engine.cells"] == 24
    assert pooled["counters"]["engine.cells"] == 24
    assert pooled["counters"]["engine.computed"] == serial["counters"]["engine.computed"]
