"""Tracing must be an observer: it cannot change what the runtime does.

The fast path keeps every tracer touch behind ``if tracer.enabled``
branches; these properties verify the other half of the contract — that
enabling the tracer changes no dispatch schedule, no virtual timestamp
and no task outcome.  Hypothesis drives a mixed workload (timers with
arbitrary delays and costs, promise chains, postMessage ping-pong) and
compares the untraced run's task record stream against the traced one.
"""

from hypothesis import given, settings, strategies as st

from repro.runtime.eventloop import EventLoop
from repro.runtime.messaging import make_channel
from repro.runtime.promises import SimPromise
from repro.runtime.simulator import Simulator
from repro.runtime.simtime import ms
from repro.runtime.timers import TimerRegistry
from repro.trace import Tracer, capture


def _run_workload(timer_specs, promise_chain, rounds):
    """One deterministic mixed workload; returns its observable schedule."""
    sim = Simulator()
    main = EventLoop(sim, "main", record_trace=True)
    worker = EventLoop(sim, "worker", record_trace=True)
    timers = TimerRegistry(main)
    side_main, side_worker = make_channel("chan", main, worker, latency_ns=ms(1))
    log = []

    for i, (delay_ms, cost) in enumerate(timer_specs):
        def fire(i=i, cost=cost):
            sim.consume(cost)
            log.append(("timer", i, sim.now))
        timers.set_timeout(fire, delay_ms)

    promise = SimPromise(main, label="p")
    for i in range(promise_chain):
        promise = promise.then(lambda v, i=i: (log.append(("react", i, sim.now)), v)[1])
    timers.set_timeout(lambda: promise.resolve(0), 1)

    state = [0]

    def on_worker(event):
        side_worker.post(event.data + 1)

    def on_main(event):
        state[0] += 1
        log.append(("pong", event.data, sim.now))
        if state[0] < rounds:
            side_main.post(event.data + 1)

    side_worker.add_handler(on_worker)
    side_main.add_handler(on_main)
    if rounds:
        side_main.post(0)

    sim.run()
    records = [
        (loop.name, r.label, r.source.value, r.start, r.end)
        for loop in (main, worker)
        for r in loop.trace
    ]
    return {
        "log": log,
        "records": records,
        "events_processed": sim.events_processed,
        "end_time": sim.dispatch_time,
        "tasks_run": (main.tasks_run, worker.tasks_run),
    }


@settings(max_examples=25, deadline=None)
@given(
    timer_specs=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 3_000_000)),
        min_size=0,
        max_size=15,
    ),
    promise_chain=st.integers(0, 5),
    rounds=st.integers(0, 5),
)
def test_traced_run_matches_untraced_run(timer_specs, promise_chain, rounds):
    untraced = _run_workload(timer_specs, promise_chain, rounds)
    tracer = Tracer()
    with capture(tracer):
        traced = _run_workload(timer_specs, promise_chain, rounds)
    assert traced == untraced
    # the traced run must actually have observed something when work ran
    if untraced["records"]:
        assert len(tracer) > 0


def test_two_traced_captures_serialise_identically():
    from repro.trace.export import dump_chrome_trace

    specs = [(3, 100_000), (3, 0), (7, 50_000)]
    exports = []
    for _ in range(2):
        tracer = Tracer()
        with capture(tracer):
            _run_workload(specs, promise_chain=3, rounds=3)
        exports.append(dump_chrome_trace(tracer))
    assert exports[0] == exports[1]
