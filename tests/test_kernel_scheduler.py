"""Unit tests for the kernel scheduler (two-stage scheduling)."""

import pytest

from repro.kernel.kobjects import CANCELLED, DISPATCHED, PENDING, READY
from repro.kernel.policies.deterministic import DeterministicSchedulingPolicy
from repro.kernel.policy import CompositePolicy, SchedulingGrid
from repro.kernel.scheduler import FLOOR_HORIZON, MIN_SLOT_GAP
from repro.kernel.space import KernelSpace
from repro.runtime.eventloop import EventLoop
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator


@pytest.fixture
def kspace():
    sim = Simulator()
    loop = EventLoop(sim, "ktest", task_dispatch_cost=0)
    policy = CompositePolicy([DeterministicSchedulingPolicy()])
    return KernelSpace(loop, policy, SchedulingGrid(), label="test")


def test_timeout_prediction_on_grid(kspace):
    event = kspace.scheduler.register("timeout", hint=ms(5))
    # clock ~0, 5ms delay, 1ms grid -> next boundary after 5ms
    assert event.predicted_time == ms(6)
    assert event.status == PENDING


def test_raf_prediction_next_10ms_boundary(kspace):
    event = kspace.scheduler.register("raf")
    assert event.predicted_time == ms(10)
    kspace.clock.tick_to(ms(10))
    follow_up = kspace.scheduler.register("raf")
    assert follow_up.predicted_time == ms(20)


def test_predictions_depend_only_on_kernel_clock(kspace):
    """Real time must not leak into predictions."""
    first = kspace.scheduler.register("raf").predicted_time
    # advance REAL time massively; kernel clock untouched
    kspace.loop.sim.schedule(ms(500), lambda: None)
    kspace.loop.sim.run()
    second = kspace.scheduler.register("raf").predicted_time
    assert second - first == MIN_SLOT_GAP  # same slot, tie-broken only


def test_messages_spaced_per_chain(kspace):
    a1 = kspace.scheduler.register("message", chain="msg:a")
    a2 = kspace.scheduler.register("message", chain="msg:a")
    b1 = kspace.scheduler.register("message", chain="msg:b")
    assert a2.predicted_time - a1.predicted_time >= ms(1)
    # an independent channel is NOT serialised behind chain a
    assert b1.predicted_time - a1.predicted_time < ms(1)


def test_messages_respect_but_do_not_raise_floor(kspace):
    completion = kspace.scheduler.register("raf")  # floor -> 10ms
    message = kspace.scheduler.register("message", chain="msg:x")
    assert message.predicted_time > completion.predicted_time
    # a later completion is NOT pushed past the message slots
    next_completion = kspace.scheduler.register("network")
    assert next_completion.predicted_time <= completion.predicted_time + ms(10) + MIN_SLOT_GAP


def test_flooding_messages_do_not_drag_completions(kspace):
    """The history-sniffing regression: 50 arrivals must not push rAF."""
    for _ in range(50):
        kspace.scheduler.register("message", chain="msg:flood")
    raf = kspace.scheduler.register("raf")
    assert raf.predicted_time <= ms(10) + FLOOR_HORIZON


def test_far_timer_does_not_drag_floor(kspace):
    kspace.scheduler.register("timeout", hint=ms(10_000))  # 10s timer
    message = kspace.scheduler.register("message", chain="msg:x")
    assert message.predicted_time < ms(50)


def test_floor_capped_at_horizon(kspace):
    kspace.scheduler.register("timeout", hint=ms(60))  # within grid logic
    message = kspace.scheduler.register("message", chain="msg:x")
    assert message.predicted_time <= kspace.clock.now + FLOOR_HORIZON + ms(2)


def test_confirm_makes_ready_and_kicks(kspace):
    ran = []
    event = kspace.scheduler.register("timeout", {"default": lambda: ran.append(1)}, hint=0)
    kspace.scheduler.confirm(event)
    assert event.status == READY
    kspace.loop.sim.run()
    assert ran == [1]
    assert event.status == DISPATCHED


def test_register_confirmed_shortcut(kspace):
    seen = []
    kspace.scheduler.register_confirmed("message", seen.append, args=("m",), chain="c")
    kspace.loop.sim.run()
    assert seen == ["m"]


def test_cancellation_three_cases(kspace):
    # case 1: not happened yet
    pending = kspace.scheduler.register("timeout", {"default": lambda: None}, hint=ms(1))
    assert kspace.scheduler.cancel(pending) == "not-happened"
    assert pending.status == CANCELLED

    # case 2: confirmed but not invoked
    ready = kspace.scheduler.register("timeout", {"default": lambda: None}, hint=ms(1))
    ready.confirm()
    assert kspace.scheduler.cancel(ready) == "confirmed-not-invoked"

    # case 3: already invoked -> ignored
    done = kspace.scheduler.register("timeout", {"default": lambda: None}, hint=ms(1))
    kspace.scheduler.confirm(done)
    kspace.loop.sim.run()
    assert kspace.scheduler.cancel(done) == "already-invoked"
    assert done.status == DISPATCHED


def test_monotone_assignment_global(kspace):
    last = 0
    for kind in ("timeout", "raf", "network", "dom", "timeout"):
        event = kspace.scheduler.register(kind, hint=ms(1) if kind == "timeout" else None)
        assert event.predicted_time > last or kind == "timeout"
        last = max(last, event.predicted_time)


def test_counters(kspace):
    event = kspace.scheduler.register("timeout", {"default": lambda: None}, hint=0)
    kspace.scheduler.confirm(event)
    other = kspace.scheduler.register("timeout", hint=0)
    kspace.scheduler.cancel(other)
    assert kspace.scheduler.registered_count == 2
    assert kspace.scheduler.confirmed_count == 1
    assert kspace.scheduler.cancelled_count == 1
