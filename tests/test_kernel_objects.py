"""Unit tests for kernel objects: events, queue, clock, comm envelopes."""

import pytest

from repro.errors import KernelError
from repro.kernel import comm
from repro.kernel.kclock import KernelClock, KernelPerformance
from repro.kernel.kobjects import (
    CANCELLED,
    PENDING,
    READY,
    KernelEvent,
    KernelEventQueue,
)
from repro.runtime.simtime import ms, us
from repro.runtime.simulator import Simulator


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------

def test_event_lifecycle_pending_ready():
    event = KernelEvent("timeout", ms(5), {"default": lambda: None})
    assert event.status == PENDING
    event.confirm(args=(1, 2))
    assert event.status == READY
    assert event.args == (1, 2)
    assert event.chosen_callback is not None


def test_confirm_selects_callback_and_deletes_others():
    """Paper §III-D1: onload fires -> onerror deleted from the event."""
    onload, onerror = (lambda: "l"), (lambda: "e")
    event = KernelEvent("dom", ms(5), {"onload": onload, "onerror": onerror})
    event.confirm(which="onload")
    assert event.chosen_callback is onload
    assert list(event.callbacks) == ["onload"]


def test_confirm_unknown_callback_raises():
    event = KernelEvent("dom", 0, {"onload": lambda: None})
    with pytest.raises(KernelError):
        event.confirm(which="onerror")


def test_cancel_before_and_after_confirm():
    a = KernelEvent("timeout", 0)
    a.cancel()
    assert a.status == CANCELLED
    a.confirm()  # confirm on cancelled: ignored
    assert a.status == CANCELLED

    b = KernelEvent("timeout", 0, {"default": lambda: None})
    b.confirm()
    b.cancel()
    assert b.status == CANCELLED


def test_double_confirm_raises():
    event = KernelEvent("timeout", 0, {"default": lambda: None})
    event.confirm()
    with pytest.raises(KernelError):
        event.confirm()


# ----------------------------------------------------------------------
# queue
# ----------------------------------------------------------------------

def test_queue_orders_by_predicted_time():
    queue = KernelEventQueue()
    late = queue.push(KernelEvent("a", ms(10)))
    early = queue.push(KernelEvent("b", ms(1)))
    assert queue.top() is early
    assert queue.pop() is early
    assert queue.pop() is late
    assert queue.pop() is None


def test_queue_lookup_and_remove():
    queue = KernelEventQueue()
    event = queue.push(KernelEvent("a", ms(1)))
    assert queue.lookup(event.id) is event
    queue.remove(event)
    assert queue.lookup(event.id) is None
    assert queue.top() is None


def test_queue_skips_cancelled():
    queue = KernelEventQueue()
    first = queue.push(KernelEvent("a", ms(1)))
    second = queue.push(KernelEvent("b", ms(2)))
    first.cancel()
    assert queue.top() is second
    assert len(queue) == 1


def test_pending_count():
    queue = KernelEventQueue()
    queue.push(KernelEvent("a", 1))
    ready = queue.push(KernelEvent("b", 2, {"default": lambda: None}))
    ready.confirm()
    assert queue.pending_count == 1


# ----------------------------------------------------------------------
# kernel clock
# ----------------------------------------------------------------------

def test_kernel_clock_api_ticks_are_fixed():
    clock = KernelClock(api_tick_ns=us(10))
    clock.api_tick()
    clock.api_tick()
    assert clock.now == us(20)
    assert clock.api_ticks == 2


def test_kernel_clock_tick_to_never_goes_back():
    clock = KernelClock()
    clock.tick_to(ms(5))
    clock.tick_to(ms(3))
    assert clock.now == ms(5)


def test_kernel_clock_display_quantizes():
    clock = KernelClock(display_resolution_ns=ms(1))
    clock.tick_by(ms(3) + 123_456)
    assert clock.display_ns() == ms(3)
    assert clock.display_ms() == 3.0


def test_kernel_performance_advances_per_call():
    sim = Simulator()
    clock = KernelClock(api_tick_ns=us(10), display_resolution_ns=us(10))
    perf = KernelPerformance(clock, sim)
    first = perf.now()
    second = perf.now()
    # deterministic: exactly one tick apart, regardless of real time
    assert second - first == pytest.approx(0.01)
    assert perf.time_origin == 0.0


# ----------------------------------------------------------------------
# kernel/user message overlay
# ----------------------------------------------------------------------

def test_wrap_and_classify_user():
    kind, payload, command = comm.classify(comm.wrap_user({"x": 1}))
    assert kind == "user"
    assert payload == {"x": 1}
    assert command is None


def test_wrap_and_classify_kernel():
    kind, payload, command = comm.classify(comm.wrap_kernel("confirmFetch", 7))
    assert kind == "kernel"
    assert command == "confirmFetch"
    assert payload == 7


def test_raw_messages_pass_through():
    kind, payload, _ = comm.classify("plain")
    assert kind == "raw"
    assert payload == "plain"


def test_user_cannot_spoof_kernel_commands():
    """A malicious page posting a kernel-shaped dict must stay user data."""
    spoof = {comm.ENVELOPE_KEY: comm.TYPE_KERNEL, "command": "load-user-thread"}
    wrapped = comm.wrap_user(spoof)
    kind, payload, command = comm.classify(wrapped)
    assert kind == "user"
    assert command is None
    assert payload == spoof
