"""Tests for the experiment service (repro.serve).

A real server on a real unix socket per test: the protocol frames, the
control ops, per-job cancellation from a second connection, a client
hanging up mid-stream, and the shutdown contract (socket unlinked).
"""

import json
import socket
import threading
import time

import pytest

from repro.serve import ExperimentServer, request, submit_and_stream

SMALL_JOB = {
    "kind": "population",
    "size": 60,
    "seed": 0,
    "telemetry_every": 20,
    "result_every": 10,
}

# big enough that it cannot finish before the test reacts mid-stream
SLOW_JOB = {"kind": "population", "size": 500_000, "seed": 0, "telemetry_every": 25}


@pytest.fixture
def server(tmp_path):
    srv = ExperimentServer(str(tmp_path / "serve.sock"))
    srv.start()
    try:
        yield srv
    finally:
        srv.shutdown()


def raw_connect(server):
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(10.0)
    conn.connect(server.socket_path)
    return conn


def send_line(conn, payload):
    conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))


def read_frame(reader):
    line = reader.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


# ----------------------------------------------------------------------
# control ops
# ----------------------------------------------------------------------
def test_ping_pong(server):
    response = request(server.socket_path, {"op": "ping"})
    assert response["type"] == "pong"
    assert isinstance(response["ts"], float)


def test_malformed_json_gets_an_error_frame_not_a_hangup(server):
    conn = raw_connect(server)
    try:
        conn.sendall(b"this is not json\n")
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        frame = read_frame(reader)
        assert frame["type"] == "error"
        assert "malformed" in frame["message"]
        # the connection survives the bad line
        send_line(conn, {"op": "ping"})
        assert read_frame(reader)["type"] == "pong"
    finally:
        conn.close()


def test_unknown_op_and_unknown_job_kind_are_reported(server):
    response = request(server.socket_path, {"op": "frobnicate"})
    assert response["type"] == "error" and "unknown op" in response["message"]
    frames = list(submit_and_stream(server.socket_path, {"kind": "nope"}, timeout=10.0))
    assert len(frames) == 1
    assert frames[0]["type"] == "error"
    assert "unknown job kind" in frames[0]["message"]


def test_cancel_of_an_unknown_job_is_an_error(server):
    response = request(server.socket_path, {"op": "cancel", "job_id": "job-99"})
    assert response["type"] == "error" and "job-99" in response["message"]


# ----------------------------------------------------------------------
# submit: the streamed frame contract
# ----------------------------------------------------------------------
def test_submit_streams_accepted_telemetry_and_done(server):
    frames = list(submit_and_stream(server.socket_path, SMALL_JOB, timeout=60.0))
    assert frames[0]["type"] == "accepted"
    job = frames[0]["job"]
    assert all(f["job"] == job and "ts" in f for f in frames)
    assert frames[-1]["type"] == "done"

    seqs = [f["seq"] for f in frames if f["type"] == "result"]
    assert seqs == sorted(seqs) and len(seqs) == len(set(seqs)) and seqs

    telemetry = [f for f in frames if f["type"] == "telemetry"]
    assert [f["done"] for f in telemetry] == [20, 40, 60]
    for frame in telemetry:
        assert frame["errors"] == 0
        assert frame["computed"] + frame["cached"] == frame["done"]
        assert "p50" in frame["quantiles"]

    report = frames[-1]["report"]
    assert report["pages"] == 60
    assert report["computed"] == 60
    assert sum(c["count"] for c in report["configs"].values()) == 60

    status = request(server.socket_path, {"op": "status"})
    assert status["jobs"] == [
        {"id": job, "kind": "population", "status": "done", "results": 60, "errors": 0}
    ]


def test_jobs_get_fresh_ids(server):
    first = next(iter(submit_and_stream(server.socket_path, SMALL_JOB, timeout=60.0)))
    second = next(iter(submit_and_stream(server.socket_path, SMALL_JOB, timeout=60.0)))
    assert first["job"] != second["job"]


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
def test_cancel_from_a_second_connection_stops_the_job(server):
    conn = raw_connect(server)
    try:
        send_line(conn, {"op": "submit", "job": SLOW_JOB})
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        accepted = read_frame(reader)
        assert accepted["type"] == "accepted"
        job = accepted["job"]
        # wait until the job demonstrably makes progress...
        assert read_frame(reader)["type"] == "telemetry"
        # ...then cancel it from a different connection
        response = request(server.socket_path, {"op": "cancel", "job_id": job})
        assert response == {"type": "cancelling", "job": job, "ts": response["ts"]}
        deadline = time.time() + 30.0
        while True:
            frame = read_frame(reader)
            if frame["type"] != "telemetry":
                break
            assert time.time() < deadline, "job never acknowledged the cancel"
        assert frame["type"] == "cancelled"
        assert 0 < frame["results"] < SLOW_JOB["size"]
    finally:
        conn.close()

    status = request(server.socket_path, {"op": "status"})
    assert status["jobs"][0]["status"] == "cancelled"


def test_client_disconnect_mid_job_cancels_it_and_keeps_serving(server):
    conn = raw_connect(server)
    send_line(conn, {"op": "submit", "job": SLOW_JOB})
    reader = conn.makefile("r", encoding="utf-8", newline="\n")
    accepted = read_frame(reader)
    assert accepted["type"] == "accepted"
    assert read_frame(reader)["type"] == "telemetry"
    # hang up abruptly mid-stream
    reader.close()
    conn.close()

    # the server notices on its next emit, cancels the job, keeps serving
    deadline = time.time() + 30.0
    while time.time() < deadline:
        status = request(server.socket_path, {"op": "status"})
        assert status["type"] == "status"
        if status["jobs"][0]["status"] == "cancelled":
            break
        time.sleep(0.1)
    assert status["jobs"][0]["status"] == "cancelled"
    # and a fresh job still runs to completion
    frames = list(submit_and_stream(server.socket_path, SMALL_JOB, timeout=60.0))
    assert frames[-1]["type"] == "done"


def test_closing_the_client_generator_cancels_server_side(server):
    stream = submit_and_stream(server.socket_path, SLOW_JOB, timeout=30.0)
    assert next(stream)["type"] == "accepted"
    assert next(stream)["type"] == "telemetry"
    stream.close()  # closes the connection -> server cancels the job
    deadline = time.time() + 30.0
    while time.time() < deadline:
        status = request(server.socket_path, {"op": "status"})
        if status["jobs"][0]["status"] == "cancelled":
            return
        time.sleep(0.1)
    pytest.fail("job kept running after the client went away")


# ----------------------------------------------------------------------
# shutdown
# ----------------------------------------------------------------------
def test_shutdown_says_bye_and_unlinks_the_socket(tmp_path):
    srv = ExperimentServer(str(tmp_path / "bye.sock"))
    srv.start()
    response = request(srv.socket_path, {"op": "shutdown"})
    assert response["type"] == "bye"
    deadline = time.time() + 10.0
    import os

    while os.path.exists(srv.socket_path) and time.time() < deadline:
        time.sleep(0.05)
    assert not os.path.exists(srv.socket_path)
    srv.shutdown()  # idempotent


def test_shutdown_cancels_a_running_job(tmp_path):
    srv = ExperimentServer(str(tmp_path / "stop.sock"))
    srv.start()
    try:
        frames = []

        def run():
            for frame in submit_and_stream(srv.socket_path, SLOW_JOB, timeout=30.0):
                frames.append(frame)

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        deadline = time.time() + 30.0
        while not frames and time.time() < deadline:
            time.sleep(0.05)
        assert frames and frames[0]["type"] == "accepted"
        srv.shutdown()
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert frames[-1]["type"] in ("cancelled", "error")
    finally:
        srv.shutdown()
