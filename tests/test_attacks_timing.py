"""Integration tests: timing-attack rows against the decisive defenses.

The full matrix is the Table I benchmark; tests here pin the cells that
define each mechanism (legacy leaks; JSKernel's determinism wins; the
distinctive cells of Fuzzyfox, DeterFox, Tor and Chrome Zero).
"""

import pytest

from repro.attacks import create, timing_rows
from repro.attacks.expected import expected_matrix

EXPECTED = expected_matrix()

FAST_ROWS = [
    "cache-attack",
    "clock-edge",
    "svg-filtering",
    "floating-point",
    "css-animation",
    "video-webvtt",
]


@pytest.mark.parametrize("attack_name", FAST_ROWS)
def test_timing_attack_works_on_legacy_chrome(attack_name):
    result = create(attack_name).run("legacy-chrome")
    assert result.success, f"{attack_name} must leak on legacy: {result.detail}"


@pytest.mark.parametrize("attack_name", FAST_ROWS)
def test_timing_attack_defeated_by_jskernel(attack_name):
    result = create(attack_name).run("jskernel")
    assert result.defended, f"JSKernel must stop {attack_name}: {result.detail}"


def test_clock_edge_cells_match_mechanisms():
    # fuzzy edges defend; exact grids (Tor) leak
    assert create("clock-edge").run("fuzzyfox").defended
    assert create("clock-edge").run("chromezero").defended
    assert create("clock-edge").run("tor").success
    assert create("clock-edge").run("deterfox").success


def test_deterfox_defends_determinism_rows_only():
    assert create("cache-attack").run("deterfox").defended
    assert create("svg-filtering").run("deterfox").defended
    assert create("css-animation").run("deterfox").success  # real clocks remain


def test_loopscan_only_jskernel_defends():
    assert create("loopscan").run("jskernel").defended
    assert create("loopscan").run("legacy-chrome").success
    assert create("loopscan").run("tor").success


def test_animation_clocks_resist_coarse_explicit_clocks():
    # Tor's 100ms clamp does not touch the compositor clock
    assert create("css-animation").run("tor").success
    assert create("video-webvtt").run("tor").success


def test_timing_rows_return_without_deterministic_policy():
    """Ablation: CVE policies alone leave event-timing channels leaking
    (the kernel clock still covers pure clock-sampling channels)."""
    assert create("cache-attack").run("jskernel-nodet").success
    assert create("svg-filtering").run("jskernel-nodet").success


def test_kernel_clock_alone_defends_clock_sampling_channels():
    assert create("css-animation").run("jskernel-nodet").defended


def test_svg_filtering_measurements_pin_table2_values():
    attack = create("svg-filtering")
    low = attack.run_trial("jskernel", "low", 1)
    high = attack.run_trial("jskernel", "high", 2)
    assert low == 10.0 and high == 10.0  # the paper's 10ms / 10ms cell
    legacy_low = attack.run_trial("legacy-chrome", "low", 1)
    assert legacy_low == pytest.approx(16.67, abs=0.1)  # paper: 16.66ms


def test_loopscan_measurement_pins_table2_values():
    attack = create("loopscan")
    assert attack.run_trial("jskernel", "google", 1) == 1.0  # paper: 1ms
    google = attack.run_trial("legacy-chrome", "google", 1)
    youtube = attack.run_trial("legacy-chrome", "youtube", 1)
    assert 3.0 < google < 7.0  # paper: 4.5ms
    assert 7.0 < youtube < 12.0  # paper: 8.8ms


def test_attack_result_metadata():
    result = create("cache-attack").run("legacy-chrome")
    assert result.mode == "timing"
    assert result.attack == "cache-attack"
    assert 0.5 <= result.accuracy <= 1.0
    assert set(result.samples) == {"cached", "uncached"}


def test_timing_rows_registry_complete():
    assert len(timing_rows()) == 10
