"""Unit tests for the SVG filter cost model, tasks and error types."""

import pytest

from repro.errors import (
    BrowserCrash,
    ReproError,
    SecurityError,
    SimulationError,
    UseAfterFreeError,
)
from repro.runtime.svgfilter import (
    SimImage,
    blur_cost,
    erode_cost,
    filter_cost,
    subnormal_multiply_cost,
)
from repro.runtime.task import Task, TaskRecord, TaskSource, make_ready_key


# ----------------------------------------------------------------------
# SVG filters
# ----------------------------------------------------------------------

def test_erode_cost_scales_with_pixels():
    small = SimImage(100, 100)
    large = SimImage(200, 200)
    assert erode_cost(large) > 3 * erode_cost(small)


def test_erode_cost_depends_on_content():
    dark = SimImage(256, 256, dark_fraction=1.0)
    light = SimImage(256, 256, dark_fraction=0.0)
    assert erode_cost(dark) > erode_cost(light)


def test_iterations_multiply_cost():
    image = SimImage(128, 128)
    assert erode_cost(image, iterations=3) == 3 * erode_cost(image, iterations=1)
    assert blur_cost(image, iterations=2) == 2 * blur_cost(image)


def test_filter_cost_dispatch():
    image = SimImage(64, 64)
    assert filter_cost("erode", image) == erode_cost(image)
    assert filter_cost("feMorphology", image) == erode_cost(image)
    assert filter_cost("feGaussianBlur", image) == blur_cost(image)
    with pytest.raises(SimulationError):
        filter_cost("feTurbulence", image)


def test_invalid_dark_fraction_rejected():
    with pytest.raises(SimulationError):
        SimImage(10, 10, dark_fraction=1.5)


def test_subnormal_cost_ratio():
    normal = subnormal_multiply_cost(False, 1_000)
    subnormal = subnormal_multiply_cost(True, 1_000)
    assert subnormal > 10 * normal  # the Andrysco et al. slowdown class


# ----------------------------------------------------------------------
# tasks
# ----------------------------------------------------------------------

def test_task_ids_are_monotone():
    a = Task(lambda: None)
    b = Task(lambda: None)
    assert b.id > a.id


def test_make_ready_key_orders_fifo_within_time():
    a = Task(lambda: None, ready_time=5)
    b = Task(lambda: None, ready_time=5)
    assert make_ready_key(a) < make_ready_key(b)


def test_task_record_duration():
    record = TaskRecord(1, "t", TaskSource.SCRIPT, 100, 350)
    assert record.duration == 250


def test_task_label_defaults_to_callback_name():
    def my_callback():
        pass

    assert Task(my_callback).label == "my_callback"
    assert Task(my_callback, label="explicit").label == "explicit"


# ----------------------------------------------------------------------
# error hierarchy
# ----------------------------------------------------------------------

def test_error_hierarchy():
    assert issubclass(UseAfterFreeError, BrowserCrash)
    assert issubclass(BrowserCrash, ReproError)
    assert issubclass(SecurityError, ReproError)
    assert not issubclass(SecurityError, BrowserCrash)


def test_browser_crash_carries_cve():
    crash = UseAfterFreeError("boom", cve="CVE-2018-5092")
    assert crash.cve == "CVE-2018-5092"
    assert UseAfterFreeError("boom").cve == ""
