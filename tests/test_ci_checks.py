"""Unit tests for the promoted CI validators (tools/ci_checks.py)."""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
)

import ci_checks  # noqa: E402
from ci_checks import (  # noqa: E402
    SHAREDMEM_EXPECTED,
    CheckFailure,
    check_analyze,
    check_cube,
    check_fuzz,
    check_sharedmem,
    check_trace,
)


def write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return str(path)


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
GOOD_TRACE = {
    "traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1},
        {"ph": "X", "name": "task", "ts": 1, "pid": 1, "tid": 1},
    ]
}


def test_check_trace_accepts_a_valid_trace(tmp_path):
    path = write(tmp_path / "trace.json", GOOD_TRACE)
    assert check_trace(path) == "ok: 1 events, 1 thread rows"


@pytest.mark.parametrize(
    "trace, fragment",
    [
        ({"traceEvents": []}, "no events"),
        ({"traceEvents": [{"ph": "M", "name": "thread_name"}]}, "only metadata"),
        (
            {"traceEvents": [{"ph": "X", "name": "bad"}]},
            "malformed event",
        ),
        (
            {"traceEvents": [{"ph": "X", "ts": 1, "pid": 1, "tid": 1}]},
            "no thread rows",
        ),
    ],
)
def test_check_trace_rejects_bad_traces(tmp_path, trace, fragment):
    path = write(tmp_path / "trace.json", trace)
    with pytest.raises(CheckFailure, match=fragment):
        check_trace(path)


def test_check_trace_reports_unreadable_files(tmp_path):
    with pytest.raises(CheckFailure, match="cannot load"):
        check_trace(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# analyze
# ----------------------------------------------------------------------
def analyze_reports(tmp_path, **overrides):
    reports = {
        "races-baseline.json": {
            "race_count": 2,
            "runs": [{"races": [{"pattern": "use-after-free"}]}],
        },
        "races-jskernel.json": {"race_count": 0, "runs": []},
        "determinism-jskernel.json": {
            "deterministic": True,
            "divergence": 0,
            "schedule_length": 42,
        },
        "determinism-baseline.json": {"divergence": 3},
    }
    reports.update(overrides)
    for name, payload in reports.items():
        write(tmp_path / name, payload)
    return str(tmp_path)


def test_check_analyze_accepts_the_expected_shape(tmp_path):
    summary = check_analyze(analyze_reports(tmp_path))
    assert summary.startswith("ok: baseline races 2")


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        (
            {"races-baseline.json": {"race_count": 0, "runs": []}},
            "baseline found no races",
        ),
        (
            {
                "races-baseline.json": {
                    "race_count": 1,
                    "runs": [{"races": [{"pattern": "write-write"}]}],
                }
            },
            "no use-after-free",
        ),
        ({"races-jskernel.json": {"race_count": 1, "runs": []}}, "expected 0"),
        (
            {
                "determinism-jskernel.json": {
                    "deterministic": False,
                    "divergence": 1,
                    "schedule_length": 10,
                }
            },
            "not deterministic",
        ),
        (
            {"determinism-baseline.json": {"divergence": 0}},
            "unexpectedly seed-independent",
        ),
    ],
)
def test_check_analyze_rejects_drift(tmp_path, overrides, fragment):
    with pytest.raises(CheckFailure, match=fragment):
        check_analyze(analyze_reports(tmp_path, **overrides))


# ----------------------------------------------------------------------
# fuzz (failure paths; the happy path replays a real witness in CI)
# ----------------------------------------------------------------------
def test_check_fuzz_rejects_an_empty_directory(tmp_path):
    with pytest.raises(CheckFailure, match="no witness files"):
        check_fuzz(str(tmp_path))


def test_check_fuzz_rejects_an_unminimised_witness(tmp_path):
    write(tmp_path / "w.json", {"signature": ["leak"]})
    with pytest.raises(CheckFailure, match="not minimised"):
        check_fuzz(str(tmp_path))


def test_check_fuzz_rejects_a_signatureless_witness(tmp_path):
    write(tmp_path / "w.json", {"signature": []})
    with pytest.raises(CheckFailure, match="no failure signature"):
        check_fuzz(str(tmp_path))


# ----------------------------------------------------------------------
# cube
# ----------------------------------------------------------------------
def cube_payload():
    delay = {"count": 3, "mean_ns": 10.0, "cdf": [{"le_ns": None, "fraction": 1.0}]}
    return {
        "attacks": ["cve-2018-5092"],
        "defenses": ["jskernel", "detbrowser"],
        "pair": ["jskernel", "detbrowser"],
        "seed": 0,
        "verdicts": {"cve-2018-5092": {"jskernel": True, "detbrowser": False}},
        "details": {"cve-2018-5092": {"jskernel": "held", "detbrowser": "leak"}},
        "overhead": {
            "cve-2018-5092": {
                "jskernel": {"queue_delay": delay},
                "detbrowser": {"queue_delay": delay},
            }
        },
        "divergent": [
            {
                "attack": "cve-2018-5092",
                "kind": "verdict",
                "jskernel": True,
                "detbrowser": False,
            }
        ],
        "errors": [],
    }


def cube_fixture():
    cube = cube_payload()
    return {
        key: cube[key]
        for key in ("attacks", "defenses", "pair", "seed", "verdicts", "divergent")
    }


def test_check_cube_accepts_a_matching_dump(tmp_path):
    cube = write(tmp_path / "cube.json", cube_payload())
    expected = write(tmp_path / "expected.json", cube_fixture())
    summary = check_cube(cube, expected)
    assert summary.startswith("ok: 2 cells")
    assert "1 verdict-divergent" in summary


def test_check_cube_writes_the_cdf_artifact(tmp_path):
    cube = write(tmp_path / "cube.json", cube_payload())
    expected = write(tmp_path / "expected.json", cube_fixture())
    out = str(tmp_path / "cdfs.json")
    check_cube(cube, expected, cdf_out=out)
    with open(out, "r", encoding="utf-8") as handle:
        cdfs = json.load(handle)
    assert cdfs["cve-2018-5092"]["jskernel"]["queue_delay"]["cdf"]


def test_check_cube_rejects_verdict_drift(tmp_path):
    drifted = cube_payload()
    drifted["verdicts"]["cve-2018-5092"]["detbrowser"] = True
    cube = write(tmp_path / "cube.json", drifted)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="verdict drift"):
        check_cube(cube, expected)


def test_check_cube_rejects_divergence_drift(tmp_path):
    drifted = cube_payload()
    drifted["divergent"] = []
    cube = write(tmp_path / "cube.json", drifted)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="divergent cells drifted"):
        check_cube(cube, expected)


def test_check_cube_rejects_cell_errors(tmp_path):
    poisoned = cube_payload()
    poisoned["errors"] = ["cve-2018-5092 vs jskernel: boom"]
    cube = write(tmp_path / "cube.json", poisoned)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="cell errors"):
        check_cube(cube, expected)


def test_check_cube_rejects_a_missing_cdf(tmp_path):
    bare = cube_payload()
    bare["overhead"]["cve-2018-5092"]["detbrowser"] = {}
    cube = write(tmp_path / "cube.json", bare)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="missing a queue-delay CDF"):
        check_cube(cube, expected)


def test_check_cube_requires_the_fixture_to_pin_divergence(tmp_path):
    agreeing = cube_payload()
    agreeing["verdicts"]["cve-2018-5092"]["detbrowser"] = True
    agreeing["divergent"] = []
    fixture = {
        key: agreeing[key]
        for key in ("attacks", "defenses", "pair", "seed", "verdicts", "divergent")
    }
    cube = write(tmp_path / "cube.json", agreeing)
    expected = write(tmp_path / "expected.json", fixture)
    with pytest.raises(CheckFailure, match="pins no verdict-divergent"):
        check_cube(cube, expected)


# ----------------------------------------------------------------------
# sharedmem (the sharedmem-smoke job's validator)
# ----------------------------------------------------------------------
def sharedmem_cube_payload():
    delay = {"count": 3, "mean_ns": 10.0, "cdf": [{"le_ns": None, "fraction": 1.0}]}
    details = {
        attack: {defense: "held" for defense in row}
        for attack, row in SHAREDMEM_EXPECTED.items()
    }
    details["lock-order-deadlock"]["legacy-chrome"] = (
        "deadlock: lock:a#1 <- lock:b#2 cycle"
    )
    details["lock-order-deadlock"]["jskernel"] = (
        "blocked: kernel lock-order policy vetoed out-of-order acquire"
    )
    return {
        "attacks": list(SHAREDMEM_EXPECTED),
        "defenses": ["legacy-chrome", "fuzzyfox", "jskernel", "detbrowser"],
        "seed": 0,
        "verdicts": {
            attack: dict(row) for attack, row in SHAREDMEM_EXPECTED.items()
        },
        "details": details,
        "overhead": {
            attack: {defense: {"queue_delay": delay} for defense in row}
            for attack, row in SHAREDMEM_EXPECTED.items()
        },
        "divergent": [],
        "errors": [],
    }


def deadlock_witness_payload():
    """A genuine replayable witness: the nominal lock-order-deadlock
    schedule deadlocks, so replaying an unperturbed trial reproduces the
    ``['deadlock']`` signature."""
    return {
        "attack": "lock-order-deadlock",
        "defense": "legacy-chrome",
        "seed": 0,
        "trial": 0,
        "strategy": "none",
        "perturb": {"strategy": "none"},
        "faults": {},
        "signature": ["deadlock"],
        "minimized": {"atoms_before": 0, "atoms_after": 0, "tests_run": 1},
    }


def test_check_sharedmem_accepts_pinned_cube_and_replayable_witness(tmp_path):
    cube = write(tmp_path / "cube.json", sharedmem_cube_payload())
    witnesses = tmp_path / "witnesses"
    witnesses.mkdir()
    write(witnesses / "witness-000.json", deadlock_witness_payload())
    summary = check_sharedmem(cube, str(witnesses))
    assert summary.startswith("ok: 20 sharedmem cells pinned")
    assert "deadlock" in summary


def test_check_sharedmem_rejects_a_missing_scenario_row(tmp_path):
    payload = sharedmem_cube_payload()
    del payload["verdicts"]["gc-vs-mutator"]
    cube = write(tmp_path / "cube.json", payload)
    with pytest.raises(CheckFailure, match="missing the 'gc-vs-mutator' row"):
        check_sharedmem(cube, str(tmp_path))


def test_check_sharedmem_rejects_verdict_drift(tmp_path):
    # the pinned expected-failure flipping (fuzzyfox suddenly "defending"
    # the counter-thread clock) must fail the gate, not silently pass
    payload = sharedmem_cube_payload()
    payload["verdicts"]["counter-thread-clock"]["fuzzyfox"] = True
    cube = write(tmp_path / "cube.json", payload)
    with pytest.raises(CheckFailure, match="verdict drift"):
        check_sharedmem(cube, str(tmp_path))


def test_check_sharedmem_rejects_an_unnamed_deadlock_cycle(tmp_path):
    payload = sharedmem_cube_payload()
    payload["details"]["lock-order-deadlock"]["legacy-chrome"] = "crash"
    cube = write(tmp_path / "cube.json", payload)
    with pytest.raises(CheckFailure, match="does not name the cycle"):
        check_sharedmem(cube, str(tmp_path))


def test_check_sharedmem_rejects_a_missing_overhead_cdf(tmp_path):
    payload = sharedmem_cube_payload()
    payload["overhead"]["shm-toctou"]["jskernel"] = {"queue_delay": {"cdf": []}}
    cube = write(tmp_path / "cube.json", payload)
    with pytest.raises(CheckFailure, match="missing a queue-delay CDF"):
        check_sharedmem(cube, str(tmp_path))


def test_check_sharedmem_rejects_an_empty_witness_dir(tmp_path):
    cube = write(tmp_path / "cube.json", sharedmem_cube_payload())
    witnesses = tmp_path / "witnesses"
    witnesses.mkdir()
    with pytest.raises(CheckFailure, match="no witnesses"):
        check_sharedmem(cube, str(witnesses))


def test_check_sharedmem_rejects_an_unminimised_witness(tmp_path):
    cube = write(tmp_path / "cube.json", sharedmem_cube_payload())
    witnesses = tmp_path / "witnesses"
    witnesses.mkdir()
    payload = deadlock_witness_payload()
    del payload["minimized"]
    write(witnesses / "witness-000.json", payload)
    with pytest.raises(CheckFailure, match="not minimised"):
        check_sharedmem(cube, str(witnesses))


def test_check_sharedmem_rejects_a_wrong_signature(tmp_path):
    cube = write(tmp_path / "cube.json", sharedmem_cube_payload())
    witnesses = tmp_path / "witnesses"
    witnesses.mkdir()
    payload = deadlock_witness_payload()
    payload["signature"] = ["oom"]
    write(witnesses / "witness-000.json", payload)
    with pytest.raises(CheckFailure, match="lacks 'deadlock'"):
        check_sharedmem(cube, str(witnesses))


# ----------------------------------------------------------------------
# runlog / telemetry (the telemetry-smoke job's validators)
# ----------------------------------------------------------------------
def runlog_lines():
    """A minimal healthy run log: begin, one spanned cell, end."""
    return [
        {"ev": "run_begin", "ts": 1.0, "pid": 7, "command": "cube"},
        {"ev": "span_begin", "ts": 1.1, "pid": 7, "span": 1, "name": "engine.shard"},
        {"ev": "point", "ts": 1.2, "pid": 7, "name": "engine.cell", "attrs": {"ok": True}},
        {"ev": "span_end", "ts": 1.3, "pid": 7, "span": 1, "name": "engine.shard", "dur_s": 0.2},
        {"ev": "run_end", "ts": 1.4, "pid": 7, "cells": 1},
    ]


def write_runlog(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


def test_check_runlog_accepts_a_balanced_log(tmp_path):
    path = write_runlog(tmp_path / "run.jsonl", runlog_lines())
    assert (
        ci_checks.check_runlog(path)
        == "ok: 5 records, 1 spans balanced, 1 cell outcomes across 1 processes"
    )


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda lines: lines[:-1], "no run_end"),
        (lambda lines: [l for l in lines if l["ev"] != "run_begin"], "no run_begin"),
        (lambda lines: [l for l in lines if l["ev"] != "span_end"], "unclosed spans"),
        (lambda lines: [l for l in lines if l["ev"] != "point"], "no engine.cell"),
        (lambda lines: [dict(l, span=9) if l["ev"] == "span_end" else l for l in lines],
         "span_end without begin"),
        (lambda lines: [{k: v for k, v in l.items() if k != "dur_s"} for l in lines],
         "without dur_s"),
        (lambda lines: [{k: v for k, v in l.items() if k != "pid"} for l in lines],
         "missing 'pid'"),
        (lambda lines: [], "empty"),
    ],
)
def test_check_runlog_rejects_malformed_logs(tmp_path, mutate, fragment):
    path = write_runlog(tmp_path / "run.jsonl", mutate(runlog_lines()))
    with pytest.raises(CheckFailure, match=fragment):
        ci_checks.check_runlog(path)


def test_check_runlog_rejects_non_json_lines(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text("this is not json\n")
    with pytest.raises(CheckFailure, match="not JSON"):
        ci_checks.check_runlog(str(path))


def telemetry_report():
    return {
        "version": 1,
        "command": "cube",
        "engine": {"runs": 1, "cells": 3, "computed": 2, "cached": 1, "errors": 0},
        "cache": {"hits": 1, "misses": 2, "stores": 2},
        "metrics": {
            "counters": {"eventloop.tasks.script": 5},
            "gauges": {},
            "histograms": {
                "h": {
                    "bounds": [10, 100],
                    "counts": [1, 2, 0],
                    "sum": 60,
                    "count": 3,
                    "min": 5,
                    "max": 60,
                }
            },
            "sketches": {
                "s": {
                    "accuracy": 0.005,
                    "max_centroids": 4096,
                    "count": 3,
                    "sum": 30,
                    "min": 0,
                    "max": 20,
                    "zero": 1,
                    "neg": [],
                    "pos": [[231, 1, 10], [300, 1, 20]],
                }
            },
        },
        "run": {"duration_s": 0.5, "cells_per_s": 6.0},
    }


def test_check_telemetry_accepts_a_valid_report(tmp_path):
    path = write(tmp_path / "telemetry.json", telemetry_report())
    assert ci_checks.check_telemetry(path) == (
        "ok: 3 cells (2 computed, 1 cached), 1 histograms, 1 sketches"
    )


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda r: {k: v for k, v in r.items() if k != "run"}, "missing section 'run'"),
        (lambda r: dict(r, engine=dict(r["engine"], cells=9)), "does not balance"),
        (
            lambda r: dict(
                r, metrics={k: v for k, v in r["metrics"].items() if k != "counters"}
            ),
            "missing 'counters'",
        ),
        (
            lambda r: dict(
                r,
                metrics={
                    **r["metrics"],
                    "histograms": {"h": dict(r["metrics"]["histograms"]["h"], counts=[1])},
                },
            ),
            "length mismatch",
        ),
        (
            lambda r: dict(
                r,
                metrics={
                    **r["metrics"],
                    "sketches": {"s": dict(r["metrics"]["sketches"]["s"], zero=5)},
                },
            ),
            "do not sum to count",
        ),
    ],
)
def test_check_telemetry_rejects_schema_drift(tmp_path, mutate, fragment):
    path = write(tmp_path / "telemetry.json", mutate(telemetry_report()))
    with pytest.raises(CheckFailure, match=fragment):
        ci_checks.check_telemetry(path)


def test_check_telemetry_validates_the_prometheus_sibling(tmp_path):
    json_path = write(tmp_path / "telemetry.json", telemetry_report())
    prom = tmp_path / "telemetry.prom"
    prom.write_text(
        "# HELP repro_engine_cells cells\n"
        "# TYPE repro_engine_cells counter\n"
        "repro_engine_cells 3\n"
        'repro_h_bucket{le="10.0"} 1\n'
    )
    assert ci_checks.check_telemetry(json_path, str(prom)).endswith(
        "; 2 Prometheus samples"
    )

    prom.write_text("repro_engine_cells 3\nthis line === is not exposition\n")
    with pytest.raises(CheckFailure, match="bad exposition line"):
        ci_checks.check_telemetry(json_path, str(prom))

    prom.write_text("repro_other 1\n")
    with pytest.raises(CheckFailure, match="repro_engine_cells series missing"):
        ci_checks.check_telemetry(json_path, str(prom))

    prom.write_text("# only comments\n")
    with pytest.raises(CheckFailure, match="no samples"):
        ci_checks.check_telemetry(json_path, str(prom))


def test_committed_fixture_satisfies_the_gate_requirements():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "tests", "golden", "cube_expected.json")
    with open(path, "r", encoding="utf-8") as handle:
        fixture = json.load(handle)
    assert [c for c in fixture["divergent"] if c["kind"] == "verdict"]
    assert fixture["pair"] == ["jskernel", "detbrowser"]


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def serve_frames():
    telemetry = {
        "errors": 0, "cached": 0, "computed": 2,
        "quantiles": {"p50": 10.0, "p90": 12.0, "p95": 12.0, "p99": 12.0},
    }
    report = {
        "pages": 4, "cached": 0, "errors": [], "error_overflow": 0,
        "computed": 4, "cache_hits": 0, "configs": {}, "archetypes": {},
    }
    return [
        {"type": "accepted", "job": "job-1", "kind": "population", "ts": 1.0},
        {"type": "result", "job": "job-1", "seq": 0, "ok": True, "ts": 1.1},
        {"type": "telemetry", "job": "job-1", "done": 2, "ts": 1.2, **telemetry},
        {"type": "result", "job": "job-1", "seq": 2, "ok": True, "ts": 1.3},
        {"type": "telemetry", "job": "job-1", "done": 4, "ts": 1.4, **telemetry},
        {"type": "done", "job": "job-1", "report": report, "ts": 1.5},
    ]


def test_check_serve_accepts_a_well_formed_stream(tmp_path):
    path = write_runlog(tmp_path / "frames.jsonl", serve_frames())
    assert ci_checks.check_serve(path) == (
        "ok: 6 frames for job-1 (2 results, 2 telemetry snapshots, final done=4)"
    )


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda frames: [], "no frames"),
        (lambda frames: frames[1:], "does not open with an accepted"),
        (lambda frames: frames[:-1], "does not end with a done"),
        (lambda frames: [dict(f, job="job-2") if f["type"] == "done" else f
                         for f in frames], "wrong job"),
        (lambda frames: [dict(f, seq=0) for f in frames], "seq not monotonically"),
        (lambda frames: [f for f in frames if f["type"] != "telemetry"],
         "no telemetry frames"),
        (lambda frames: [{k: v for k, v in f.items() if k != "computed"}
                         for f in frames], "missing 'computed'"),
        (lambda frames: [dict(f, done=1) if f.get("done") == 4 and f["type"] == "telemetry"
                         else f for f in frames], "done went backwards"),
        (lambda frames: [{k: v for k, v in f.items() if k != "ts"} for f in frames],
         "missing 'ts'"),
        (lambda frames: [dict(f, report=None) if f["type"] == "done" else f
                         for f in frames], "no report"),
        (lambda frames: [dict(f, report=dict(f["report"], pages=3))
                         if f["type"] == "done" else f for f in frames],
         "does not balance"),
    ],
)
def test_check_serve_rejects_malformed_streams(tmp_path, mutate, fragment):
    path = write_runlog(tmp_path / "frames.jsonl", mutate(serve_frames()))
    with pytest.raises(CheckFailure, match=fragment):
        ci_checks.check_serve(path)


def test_check_serve_rejects_non_json_lines(tmp_path):
    path = tmp_path / "frames.jsonl"
    path.write_text("not json\n")
    with pytest.raises(CheckFailure, match="not JSON"):
        ci_checks.check_serve(str(path))


def test_check_serve_validates_a_real_captured_stream(tmp_path):
    from repro.serve import ExperimentServer, submit_and_stream

    server = ExperimentServer(str(tmp_path / "ci.sock"))
    server.start()
    try:
        job = {"kind": "population", "size": 40, "seed": 0,
               "telemetry_every": 10, "result_every": 10}
        path = write_runlog(
            tmp_path / "frames.jsonl",
            list(submit_and_stream(server.socket_path, job, timeout=60.0)),
        )
    finally:
        server.shutdown()
    assert ci_checks.check_serve(path).startswith("ok: ")
    assert ci_checks.main(["serve", path]) == 0


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def good_bench_report(**overrides):
    report = {
        "schema": 2,
        "scale": 1.0,
        "benchmarks": {
            "wheel": {
                "events": 1000,
                "repeats": 3,
                "events_per_sec": 2_000_000.0,
                "p50_ns_per_event": 500.0,
                "p95_ns_per_event": 600.0,
                "alloc_blocks_per_event": 0.0,
            },
            "wheel-reference": {
                "events": 1000,
                "repeats": 3,
                "events_per_sec": 1_000_000.0,
                "p50_ns_per_event": 1000.0,
                "p95_ns_per_event": 1100.0,
                "alloc_blocks_per_event": 0.0,
            },
        },
        "speedups_vs_seed_reference": {"wheel": 2.0},
        "traced_overhead": {
            "untraced_events_per_sec": 400_000.0,
            "traced_events_per_sec": 200_000.0,
            "overhead_ratio": 2.0,
        },
    }
    report.update(overrides)
    return report


def test_check_bench_accepts_a_valid_report(tmp_path):
    path = write(tmp_path / "bench.json", good_bench_report())
    summary = ci_checks.check_bench(path, require=["wheel"])
    assert summary == "ok: 2 benchmarks at scale 1.0, 1 seed-reference speedups"


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda r: r.update(schema=1), "schema 1"),
        (lambda r: r.update(scale=0), "scale"),
        (lambda r: r.update(benchmarks={}), "no benchmarks"),
        (lambda r: r["benchmarks"]["wheel"].pop("events_per_sec"), "numeric"),
        (lambda r: r["benchmarks"]["wheel"].update(events=0), "non-positive"),
        (
            lambda r: r["benchmarks"]["wheel"].update(p95_ns_per_event=1.0),
            "p95 < p50",
        ),
        (lambda r: r["benchmarks"].pop("wheel"), "no live counterpart"),
        (
            lambda r: r["benchmarks"]["wheel-reference"].update(events=999),
            "different event counts",
        ),
        (lambda r: r.pop("speedups_vs_seed_reference"), "missing speedups"),
        (
            lambda r: r["speedups_vs_seed_reference"].update(wheel=3.0),
            "recomputes to",
        ),
        (
            lambda r: r["speedups_vs_seed_reference"].update(ghost=1.0),
            "lacks its benchmark pair",
        ),
        (
            lambda r: r["traced_overhead"].pop("overhead_ratio"),
            "traced_overhead",
        ),
    ],
)
def test_check_bench_rejects_schema_drift(tmp_path, mutate, fragment):
    report = good_bench_report()
    mutate(report)
    path = write(tmp_path / "bench.json", report)
    with pytest.raises(CheckFailure, match=fragment):
        ci_checks.check_bench(path)


def test_check_bench_enforces_required_cases(tmp_path):
    path = write(tmp_path / "bench.json", good_bench_report())
    with pytest.raises(CheckFailure, match="required benchmarks missing: precompiled"):
        ci_checks.check_bench(path, require=["wheel", "precompiled"])


def test_check_bench_accepts_a_real_quick_report(tmp_path):
    """End to end: a real --only wheel,precompiled run satisfies the CI gate."""
    from repro.harness.bench_core import run_bench_core

    report = run_bench_core(scale=0.01, repeats=1, only=["wheel", "precompiled"])
    path = write(tmp_path / "bench.json", report)
    summary = ci_checks.check_bench(path, require=["wheel", "precompiled"])
    assert summary.startswith("ok: 4 benchmarks")
    assert ci_checks.main(["bench", path, "--require", "wheel,precompiled"]) == 0


def test_committed_baseline_satisfies_the_bench_gate():
    baseline = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        "baselines",
        "bench_core_baseline.json",
    )
    summary = ci_checks.check_bench(baseline, require=["wheel", "precompiled"])
    assert summary.startswith("ok:")


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_main_returns_zero_on_success(tmp_path, capsys):
    path = write(tmp_path / "trace.json", GOOD_TRACE)
    assert ci_checks.main(["trace", path]) == 0
    assert capsys.readouterr().out.startswith("ok:")


def test_main_returns_one_on_failure(tmp_path, capsys):
    path = write(tmp_path / "trace.json", {"traceEvents": []})
    assert ci_checks.main(["trace", path]) == 1
    assert "check failed" in capsys.readouterr().err
