"""Unit tests for the promoted CI validators (tools/ci_checks.py)."""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
)

import ci_checks  # noqa: E402
from ci_checks import (  # noqa: E402
    CheckFailure,
    check_analyze,
    check_cube,
    check_fuzz,
    check_trace,
)


def write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return str(path)


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
GOOD_TRACE = {
    "traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1},
        {"ph": "X", "name": "task", "ts": 1, "pid": 1, "tid": 1},
    ]
}


def test_check_trace_accepts_a_valid_trace(tmp_path):
    path = write(tmp_path / "trace.json", GOOD_TRACE)
    assert check_trace(path) == "ok: 1 events, 1 thread rows"


@pytest.mark.parametrize(
    "trace, fragment",
    [
        ({"traceEvents": []}, "no events"),
        ({"traceEvents": [{"ph": "M", "name": "thread_name"}]}, "only metadata"),
        (
            {"traceEvents": [{"ph": "X", "name": "bad"}]},
            "malformed event",
        ),
        (
            {"traceEvents": [{"ph": "X", "ts": 1, "pid": 1, "tid": 1}]},
            "no thread rows",
        ),
    ],
)
def test_check_trace_rejects_bad_traces(tmp_path, trace, fragment):
    path = write(tmp_path / "trace.json", trace)
    with pytest.raises(CheckFailure, match=fragment):
        check_trace(path)


def test_check_trace_reports_unreadable_files(tmp_path):
    with pytest.raises(CheckFailure, match="cannot load"):
        check_trace(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# analyze
# ----------------------------------------------------------------------
def analyze_reports(tmp_path, **overrides):
    reports = {
        "races-baseline.json": {
            "race_count": 2,
            "runs": [{"races": [{"pattern": "use-after-free"}]}],
        },
        "races-jskernel.json": {"race_count": 0, "runs": []},
        "determinism-jskernel.json": {
            "deterministic": True,
            "divergence": 0,
            "schedule_length": 42,
        },
        "determinism-baseline.json": {"divergence": 3},
    }
    reports.update(overrides)
    for name, payload in reports.items():
        write(tmp_path / name, payload)
    return str(tmp_path)


def test_check_analyze_accepts_the_expected_shape(tmp_path):
    summary = check_analyze(analyze_reports(tmp_path))
    assert summary.startswith("ok: baseline races 2")


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        (
            {"races-baseline.json": {"race_count": 0, "runs": []}},
            "baseline found no races",
        ),
        (
            {
                "races-baseline.json": {
                    "race_count": 1,
                    "runs": [{"races": [{"pattern": "write-write"}]}],
                }
            },
            "no use-after-free",
        ),
        ({"races-jskernel.json": {"race_count": 1, "runs": []}}, "expected 0"),
        (
            {
                "determinism-jskernel.json": {
                    "deterministic": False,
                    "divergence": 1,
                    "schedule_length": 10,
                }
            },
            "not deterministic",
        ),
        (
            {"determinism-baseline.json": {"divergence": 0}},
            "unexpectedly seed-independent",
        ),
    ],
)
def test_check_analyze_rejects_drift(tmp_path, overrides, fragment):
    with pytest.raises(CheckFailure, match=fragment):
        check_analyze(analyze_reports(tmp_path, **overrides))


# ----------------------------------------------------------------------
# fuzz (failure paths; the happy path replays a real witness in CI)
# ----------------------------------------------------------------------
def test_check_fuzz_rejects_an_empty_directory(tmp_path):
    with pytest.raises(CheckFailure, match="no witness files"):
        check_fuzz(str(tmp_path))


def test_check_fuzz_rejects_an_unminimised_witness(tmp_path):
    write(tmp_path / "w.json", {"signature": ["leak"]})
    with pytest.raises(CheckFailure, match="not minimised"):
        check_fuzz(str(tmp_path))


def test_check_fuzz_rejects_a_signatureless_witness(tmp_path):
    write(tmp_path / "w.json", {"signature": []})
    with pytest.raises(CheckFailure, match="no failure signature"):
        check_fuzz(str(tmp_path))


# ----------------------------------------------------------------------
# cube
# ----------------------------------------------------------------------
def cube_payload():
    delay = {"count": 3, "mean_ns": 10.0, "cdf": [{"le_ns": None, "fraction": 1.0}]}
    return {
        "attacks": ["cve-2018-5092"],
        "defenses": ["jskernel", "detbrowser"],
        "pair": ["jskernel", "detbrowser"],
        "seed": 0,
        "verdicts": {"cve-2018-5092": {"jskernel": True, "detbrowser": False}},
        "details": {"cve-2018-5092": {"jskernel": "held", "detbrowser": "leak"}},
        "overhead": {
            "cve-2018-5092": {
                "jskernel": {"queue_delay": delay},
                "detbrowser": {"queue_delay": delay},
            }
        },
        "divergent": [
            {
                "attack": "cve-2018-5092",
                "kind": "verdict",
                "jskernel": True,
                "detbrowser": False,
            }
        ],
        "errors": [],
    }


def cube_fixture():
    cube = cube_payload()
    return {
        key: cube[key]
        for key in ("attacks", "defenses", "pair", "seed", "verdicts", "divergent")
    }


def test_check_cube_accepts_a_matching_dump(tmp_path):
    cube = write(tmp_path / "cube.json", cube_payload())
    expected = write(tmp_path / "expected.json", cube_fixture())
    summary = check_cube(cube, expected)
    assert summary.startswith("ok: 2 cells")
    assert "1 verdict-divergent" in summary


def test_check_cube_writes_the_cdf_artifact(tmp_path):
    cube = write(tmp_path / "cube.json", cube_payload())
    expected = write(tmp_path / "expected.json", cube_fixture())
    out = str(tmp_path / "cdfs.json")
    check_cube(cube, expected, cdf_out=out)
    with open(out, "r", encoding="utf-8") as handle:
        cdfs = json.load(handle)
    assert cdfs["cve-2018-5092"]["jskernel"]["queue_delay"]["cdf"]


def test_check_cube_rejects_verdict_drift(tmp_path):
    drifted = cube_payload()
    drifted["verdicts"]["cve-2018-5092"]["detbrowser"] = True
    cube = write(tmp_path / "cube.json", drifted)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="verdict drift"):
        check_cube(cube, expected)


def test_check_cube_rejects_divergence_drift(tmp_path):
    drifted = cube_payload()
    drifted["divergent"] = []
    cube = write(tmp_path / "cube.json", drifted)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="divergent cells drifted"):
        check_cube(cube, expected)


def test_check_cube_rejects_cell_errors(tmp_path):
    poisoned = cube_payload()
    poisoned["errors"] = ["cve-2018-5092 vs jskernel: boom"]
    cube = write(tmp_path / "cube.json", poisoned)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="cell errors"):
        check_cube(cube, expected)


def test_check_cube_rejects_a_missing_cdf(tmp_path):
    bare = cube_payload()
    bare["overhead"]["cve-2018-5092"]["detbrowser"] = {}
    cube = write(tmp_path / "cube.json", bare)
    expected = write(tmp_path / "expected.json", cube_fixture())
    with pytest.raises(CheckFailure, match="missing a queue-delay CDF"):
        check_cube(cube, expected)


def test_check_cube_requires_the_fixture_to_pin_divergence(tmp_path):
    agreeing = cube_payload()
    agreeing["verdicts"]["cve-2018-5092"]["detbrowser"] = True
    agreeing["divergent"] = []
    fixture = {
        key: agreeing[key]
        for key in ("attacks", "defenses", "pair", "seed", "verdicts", "divergent")
    }
    cube = write(tmp_path / "cube.json", agreeing)
    expected = write(tmp_path / "expected.json", fixture)
    with pytest.raises(CheckFailure, match="pins no verdict-divergent"):
        check_cube(cube, expected)


def test_committed_fixture_satisfies_the_gate_requirements():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "tests", "golden", "cube_expected.json")
    with open(path, "r", encoding="utf-8") as handle:
        fixture = json.load(handle)
    assert [c for c in fixture["divergent"] if c["kind"] == "verdict"]
    assert fixture["pair"] == ["jskernel", "detbrowser"]


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_main_returns_zero_on_success(tmp_path, capsys):
    path = write(tmp_path / "trace.json", GOOD_TRACE)
    assert ci_checks.main(["trace", path]) == 0
    assert capsys.readouterr().out.startswith("ok:")


def test_main_returns_one_on_failure(tmp_path, capsys):
    path = write(tmp_path / "trace.json", {"traceEvents": []})
    assert ci_checks.main(["trace", path]) == 1
    assert "check failed" in capsys.readouterr().err
