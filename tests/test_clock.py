"""Unit tests for clocks and clock-degradation policies."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.runtime.clock import (
    CLOCK_CALL_COST,
    ClockPolicy,
    DateClock,
    FuzzyClockPolicy,
    PerformanceClock,
    QuantizedClockPolicy,
)
from repro.runtime.simtime import MS, ms
from repro.runtime.simulator import ExecutionFrame, Simulator


def test_exact_policy_is_identity():
    assert ClockPolicy().report(123_456) == 123_456


def test_quantized_policy_floors():
    policy = QuantizedClockPolicy(MS)
    assert policy.report(1_999_999) == MS
    assert policy.report(2_000_000) == 2 * MS


def test_fuzzy_policy_is_monotone():
    policy = FuzzyClockPolicy(MS, random.Random(1))
    last = -1
    for t in range(0, 50 * MS, MS // 4):
        value = policy.report(t)
        assert value >= last
        last = value


def test_fuzzy_policy_advances_roughly_with_time():
    policy = FuzzyClockPolicy(MS, random.Random(2))
    value = policy.report(200 * MS)
    # random walk, but anchored: expect within a factor of ~2
    assert 50 * MS < value < 400 * MS


def _time_to_edge_after(offset_ns: int, seed: int) -> int:
    """Align to a fuzzy edge, wait ``offset_ns``, measure time to next edge."""
    policy = FuzzyClockPolicy(MS, random.Random(seed))
    t = 0
    v0 = policy.report(t)
    while policy.report(t) == v0:
        t += 20_000
    probe = t + offset_ns
    v1 = policy.report(probe)
    extra = 0
    while policy.report(probe + extra) == v1:
        extra += 20_000
    return extra


def test_fuzzy_edges_are_memoryless_in_expectation():
    """Phase info must not survive: E[time-to-edge] ~ independent of when
    we start waiting (the clock-edge defense property).

    The two waits differ 7x; with exponential (memoryless) edges the mean
    residual time is the same for both.
    """
    trials = 400
    mean_a = sum(_time_to_edge_after(100_000, s) for s in range(trials)) / trials
    mean_b = sum(_time_to_edge_after(700_000, 10_000 + s) for s in range(trials)) / trials
    assert abs(mean_a - mean_b) / max(mean_a, mean_b) < 0.25


def test_performance_clock_reports_policy_time():
    sim = Simulator()
    clock = PerformanceClock(sim, QuantizedClockPolicy(MS))
    frame = ExecutionFrame(0, "t")
    sim.push_frame(frame)
    frame.consume(ms(5) + 123)
    assert clock.now() == pytest.approx(5.0)
    sim.pop_frame()


def test_performance_clock_charges_call_cost():
    sim = Simulator()
    clock = PerformanceClock(sim)
    frame = ExecutionFrame(0, "t")
    sim.push_frame(frame)
    clock.now()
    assert frame.elapsed == CLOCK_CALL_COST
    sim.pop_frame()


def test_performance_clock_origin_offset():
    sim = Simulator()
    clock = PerformanceClock(sim, origin=ms(100))
    frame = ExecutionFrame(ms(150), "t")
    sim.push_frame(frame)
    assert clock.now() == pytest.approx(50.0, abs=0.01)
    sim.pop_frame()
    assert clock.time_origin == pytest.approx(100.0)


def test_date_clock_reports_epoch_milliseconds():
    sim = Simulator()
    clock = DateClock(sim)
    frame = ExecutionFrame(ms(1234), "t")
    sim.push_frame(frame)
    assert clock.now() == DateClock.EPOCH_MS + 1234
    sim.pop_frame()


@given(st.integers(min_value=1, max_value=10**9))
def test_quantized_policy_never_exceeds_truth(resolution):
    policy = QuantizedClockPolicy(resolution)
    for t in (0, resolution - 1, resolution, 7 * resolution + 3):
        assert policy.report(t) <= t
