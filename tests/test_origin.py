"""Unit tests for origins, URLs and the same-origin policy."""

import pytest

from repro.runtime.origin import Origin, URL, parse_url, same_origin


def test_parse_absolute_url():
    url = parse_url("https://example.com/path/to/thing")
    assert url.origin.scheme == "https"
    assert url.origin.host == "example.com"
    assert url.origin.port == 443
    assert url.path == "/path/to/thing"


def test_parse_url_with_port():
    url = parse_url("http://localhost:8080/app")
    assert url.origin.port == 8080
    assert url.serialize() == "http://localhost:8080/app"


def test_default_port_omitted_in_serialization():
    assert parse_url("https://a.com/x").origin.serialize() == "https://a.com"
    assert parse_url("http://a.com/x").origin.serialize() == "http://a.com"


def test_parse_bare_host():
    url = parse_url("https://example.com")
    assert url.path == "/"


def test_relative_absolute_path():
    base = parse_url("https://example.com/dir/page.html")
    url = parse_url("/other.js", base=base)
    assert url.serialize() == "https://example.com/other.js"


def test_relative_sibling_path():
    base = parse_url("https://example.com/dir/page.html")
    url = parse_url("asset.js", base=base)
    assert url.serialize() == "https://example.com/dir/asset.js"


def test_relative_without_base_raises():
    with pytest.raises(ValueError):
        parse_url("relative.js")


def test_same_origin_requires_scheme_host_port():
    a = Origin("https", "example.com")
    assert same_origin(a, Origin("https", "example.com"))
    assert not same_origin(a, Origin("http", "example.com"))
    assert not same_origin(a, Origin("https", "other.com"))
    assert not same_origin(a, Origin("https", "example.com", 8443))


def test_origin_hashable_and_eq():
    a = Origin("https", "example.com")
    b = Origin("https", "example.com", 443)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_url_equality():
    assert parse_url("https://a.com/x") == URL(Origin("https", "a.com"), "/x")
