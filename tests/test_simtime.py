"""Unit tests for virtual-time helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.simtime import (
    FRAME_INTERVAL,
    MS,
    SECOND,
    US,
    format_ns,
    ms,
    quantize,
    seconds,
    to_ms,
    us,
)


def test_unit_constants_are_consistent():
    assert MS == 1000 * US
    assert SECOND == 1000 * MS
    assert FRAME_INTERVAL == 16_666_667


def test_ms_conversion_roundtrip():
    assert ms(1) == MS
    assert ms(0.5) == MS // 2
    assert to_ms(ms(12.25)) == pytest.approx(12.25)


def test_us_and_seconds():
    assert us(1) == US
    assert us(2.5) == 2_500
    assert seconds(1) == SECOND
    assert seconds(0.001) == MS


def test_ms_rounds_to_nearest_nanosecond():
    assert ms(0.0000006) == 1  # 0.6 ns rounds to 1
    assert ms(0.0000004) == 0  # 0.4 ns rounds to 0


def test_quantize_floors_onto_grid():
    assert quantize(1_234_567, MS) == MS
    assert quantize(999_999, MS) == 0
    assert quantize(2 * MS, MS) == 2 * MS


def test_quantize_identity_for_unit_resolution():
    assert quantize(123, 1) == 123
    assert quantize(123, 0) == 123


def test_format_ns_scales():
    assert format_ns(5) == "5ns"
    assert format_ns(us(2)) == "2.000us"
    assert format_ns(ms(3)) == "3.000ms"
    assert format_ns(seconds(1.5)) == "1.500s"


@given(st.integers(min_value=0, max_value=10**15), st.integers(min_value=1, max_value=10**9))
def test_quantize_properties(value, resolution):
    q = quantize(value, resolution)
    assert q <= value
    assert q % resolution == 0
    assert value - q < resolution


@given(st.floats(min_value=0, max_value=10**6, allow_nan=False))
def test_ms_to_ms_roundtrip_close(value):
    assert to_ms(ms(value)) == pytest.approx(value, abs=1e-6)
