"""Edge-case integration tests for the kernel and defense plumbing."""

import pytest

from repro.defenses import make_browser
from repro.errors import NullDerefError
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms


def test_kernel_fetch_abort_path(kernel_browser, kernel_page):
    """Abort through the kernel: user promise rejects, nothing dangles."""
    kernel_browser.network.host_simple(parse_url("https://app.example/slow"), 80_000)
    outcome = {}

    def script(scope):
        controller = scope.AbortController()
        scope.fetch("/slow", {"signal": controller.signal}).then(
            lambda r: outcome.__setitem__("result", "ok"),
            lambda e: outcome.__setitem__("result", type(e).__name__),
        )
        scope.setTimeout(lambda: controller.abort(), 3)

    kernel_page.run_script(script)
    kernel_browser.run_until(lambda: "result" in outcome)
    assert outcome["result"] == "AbortError"


def test_kernel_late_dom_route_fallback(kernel_browser, kernel_page):
    """An element load started before kernel install still delivers."""
    kernel_browser.network.host_simple(parse_url("https://app.example/x.js"), 1_000,
                                       body=lambda s: None)
    events = []

    def script(scope):
        el = scope.document.create_element("script")
        el.onload = lambda: events.append("load")
        # simulate a pre-kernel load: bypass the start hook
        hook, kernel_page.load_start_hook = kernel_page.load_start_hook, None
        scope.document.body.append_child(el)
        el.set_attribute("src", "/x.js")
        kernel_page.load_start_hook = hook

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(2_000))
    assert events == ["load"]


def test_kernel_interval_coalesces_fast_native_fires(kernel_browser, kernel_page):
    """Native interval fires racing the paced dispatcher are dropped,
    not queued — count stays bounded."""
    count = {"n": 0}

    def script(scope):
        def tick():
            count["n"] += 1
            if count["n"] >= 20:
                scope.clearInterval(interval_id)

        interval_id = scope.setInterval(tick, 1)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(120))
    assert 10 <= count["n"] <= 21


def test_deterfox_preserves_native_onmessage_bug():
    """DeterFox's wrap must not mask CVE-2013-5602's native setter bug."""
    browser = make_browser("deterfox")  # vulnerable build underneath
    page = browser.open_page("https://x.example/")

    def script(scope):
        worker = scope.Worker(lambda ws: None)
        worker.terminate()
        scope.setTimeout(lambda: setattr(worker, "onmessage", lambda e: None), 5)

    page.run_script(script)
    with pytest.raises(NullDerefError):
        browser.run(until=ms(100))


def test_deterfox_worker_messages_on_slots():
    browser = make_browser("deterfox", with_bugs=False)
    page = browser.open_page("https://x.example/")
    arrivals = []

    def script(scope):
        def worker_main(ws):
            def flood():
                for _ in range(3):
                    ws.postMessage(1)
                ws.setTimeout(flood, 1)

            ws.setTimeout(flood, 1)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: arrivals.append(browser.sim.now)

    page.run_script(script)
    browser.run(until=ms(40))
    gaps = [arrivals[i + 1] - arrivals[i] for i in range(len(arrivals) - 1)]
    # deterministic 1ms message slots, not native bursts
    assert gaps and all(abs(gap - ms(1)) < ms(0.2) for gap in gaps)


def test_polyfill_import_scripts_runs_body():
    browser = make_browser("chromezero", with_bugs=False)
    from repro.runtime.network import Resource

    browser.network.host(
        Resource(
            parse_url("https://x.example/lib.js"), 500, "text/javascript",
            body=lambda ws: setattr(ws, "lib", True),
        )
    )
    page = browser.open_page("https://x.example/")
    seen = {}

    def script(scope):
        def worker_main(ws):
            ws.importScripts("/lib.js")
            ws.postMessage(getattr(ws, "lib", False))

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.__setitem__("lib", event.data)

    page.run_script(script)
    browser.run(until=ms(200))
    assert seen["lib"] is True


def test_polyfill_worker_close_and_state():
    browser = make_browser("chromezero", with_bugs=False)
    page = browser.open_page("https://x.example/")
    box = {}

    def script(scope):
        def worker_main(ws):
            ws.close()

        worker = scope.Worker(worker_main)
        box["worker"] = worker

    page.run_script(script)
    browser.run(until=ms(100))
    assert box["worker"].state == "terminated"


def test_kernel_worker_timers_deterministic(kernel_browser, kernel_page):
    seen = []

    def script(scope):
        def worker_main(ws):
            t0 = ws.performance.now()
            ws.setTimeout(lambda: ws.postMessage(ws.performance.now() - t0), 3)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(300))
    assert seen and seen[0] == pytest.approx(4.0, abs=1.01)


def test_second_page_has_independent_kernel_state(kernel_browser):
    page_a = kernel_browser.open_page("https://a.example/")
    page_b = kernel_browser.open_page("https://b.example/")
    readings = {}

    def script_a(scope):
        for _ in range(150):
            scope.performance.now()
        readings["a"] = scope.performance.now()

    def script_b(scope):
        readings["b"] = scope.performance.now()

    page_a.run_script(script_a)
    page_b.run_script(script_b)
    kernel_browser.run(until=ms(50))
    # page A's api ticks did not advance page B's kernel clock
    assert readings["b"] < readings["a"]
