"""Integration tests for the kernel interface (wrapped APIs on a page)."""

import pytest

from repro.errors import SecurityError
from repro.runtime.simtime import ms
from repro.runtime.origin import parse_url


def run(browser, until_ms=200):
    browser.run(until=ms(until_ms))


def test_kernel_performance_is_logical(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        t0 = scope.performance.now()
        scope.busy_work(50.0)  # half a frame of real CPU time
        seen["delta"] = scope.performance.now() - t0

    kernel_page.run_script(script)
    run(kernel_browser)
    # uninstrumentable work is invisible to the kernel clock
    assert seen["delta"] < 2.0


def test_kernel_performance_is_sealed(kernel_browser, kernel_page):
    outcome = {}

    def script(scope):
        try:
            scope.performance = "fake"
        except SecurityError:
            outcome["blocked"] = True

    kernel_page.run_script(script)
    run(kernel_browser)
    assert outcome.get("blocked")


def test_kernel_timer_fires_on_grid(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        t0 = scope.performance.now()
        scope.setTimeout(lambda: seen.__setitem__("at", scope.performance.now() - t0), 5)

    kernel_page.run_script(script)
    run(kernel_browser)
    assert seen["at"] == pytest.approx(6.0, abs=1.01)


def test_kernel_clear_timeout(kernel_browser, kernel_page):
    fired = []

    def script(scope):
        timer_id = scope.setTimeout(lambda: fired.append(1), 5)
        scope.clearTimeout(timer_id)

    kernel_page.run_script(script)
    run(kernel_browser)
    assert fired == []


def test_kernel_interval_repeats_and_clears(kernel_browser, kernel_page):
    count = {"n": 0}

    def script(scope):
        def tick():
            count["n"] += 1
            if count["n"] == 3:
                scope.clearInterval(interval_id)

        interval_id = scope.setInterval(tick, 5)

    kernel_page.run_script(script)
    run(kernel_browser, 500)
    assert count["n"] == 3


def test_kernel_raf_timestamps_deterministic(kernel_browser, kernel_page):
    timestamps = []

    def script(scope):
        def frame(ts):
            timestamps.append(ts)
            scope.busy_work(25.0)  # would delay real frames
            if len(timestamps) < 4:
                scope.requestAnimationFrame(frame)

        scope.requestAnimationFrame(frame)

    kernel_page.run_script(script)
    run(kernel_browser, 1000)
    deltas = [timestamps[i + 1] - timestamps[i] for i in range(3)]
    assert deltas == [10.0, 10.0, 10.0]


def test_kernel_cancel_raf(kernel_browser, kernel_page):
    fired = []

    def script(scope):
        raf_id = scope.requestAnimationFrame(fired.append)
        scope.cancelAnimationFrame(raf_id)

    kernel_page.run_script(script)
    run(kernel_browser)
    assert fired == []


def test_kernel_fetch_resolves_with_response(kernel_browser, kernel_page):
    kernel_browser.network.host_simple(
        parse_url("https://app.example/data"), 1_000, body="payload"
    )
    seen = {}

    def script(scope):
        scope.fetch("/data").then(lambda r: seen.__setitem__("body", r.body))

    kernel_page.run_script(script)
    run(kernel_browser, 500)
    assert seen["body"] == "payload"


def test_kernel_fetch_rejects_on_error(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        scope.fetch("/missing").catch(lambda e: seen.__setitem__("error", str(e)))

    kernel_page.run_script(script)
    run(kernel_browser, 500)
    assert "404" in seen["error"]


def test_kernel_dom_load_events_still_fire(kernel_browser, kernel_page):
    kernel_browser.network.host_simple(
        parse_url("https://app.example/app.js"), 5_000, body=lambda s: None
    )
    events = []

    def script(scope):
        el = scope.document.create_element("script")
        el.onload = lambda: events.append("load")
        el.onerror = lambda: events.append("error")
        scope.document.body.append_child(el)
        el.set_attribute("src", "/app.js")

    kernel_page.run_script(script)
    run(kernel_browser, 2_000)
    assert events == ["load"]


def test_kernel_window_messaging_loops_back(kernel_browser, kernel_page):
    seen = []

    def script(scope):
        scope.onmessage = lambda event: seen.append(event.data)
        scope.postMessage("ping")

    kernel_page.run_script(script)
    run(kernel_browser)
    assert seen == ["ping"]


def test_kernel_window_onmessage_trap_sealed(kernel_browser, kernel_page):
    outcome = {}

    def script(scope):
        try:
            scope.define_setter_trap("onmessage", lambda fn: None)
        except SecurityError:
            outcome["blocked"] = True

    kernel_page.run_script(script)
    run(kernel_browser)
    assert outcome.get("blocked")


def test_kernel_animation_progress_follows_kernel_clock(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        el = scope.document.create_element("div")
        scope.document.body.append_child(el)
        scope.animate(el, "left", 0.0, 1000.0, 1000.0)
        before = scope.getComputedStyle(el, "left")
        scope.busy_work(30.0)
        seen["delta"] = scope.getComputedStyle(el, "left") - before

    kernel_page.run_script(script)
    run(kernel_browser)
    assert seen["delta"] < 1.0  # 30ms of real work invisible


def test_kernel_video_clock_is_logical(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        video = scope.createVideo(60_000.0)
        video.play()
        before = video.current_time
        scope.busy_work(30.0)
        seen["delta"] = video.current_time - before

    kernel_page.run_script(script)
    run(kernel_browser)
    assert seen["delta"] < 0.005  # seconds


def test_kernel_storage_gate_blocks_private_mode(kernel_browser):
    private_page = kernel_browser.open_page("https://app.example/", private=True)
    outcome = {}

    def script(scope):
        try:
            scope.indexedDB.put("k", "v")
        except SecurityError:
            outcome["blocked"] = True

    private_page.run_script(script)
    run(kernel_browser)
    assert outcome.get("blocked")


def test_kernel_storage_allows_normal_mode(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        scope.indexedDB.put("k", "v")
        seen["value"] = scope.indexedDB.get("k")

    kernel_page.run_script(script)
    run(kernel_browser)
    assert seen["value"] == "v"


def test_kernel_shared_buffer_paced_to_grid(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        sab = scope.SharedArrayBuffer(8)
        sab.store(5)
        start = kernel_browser.sim.now
        sab.load()
        sab.load()
        seen["real_elapsed"] = kernel_browser.sim.now - start

    kernel_page.run_script(script)
    run(kernel_browser)
    # two loads paced to consecutive 1ms slots
    assert seen["real_elapsed"] >= ms(1)
