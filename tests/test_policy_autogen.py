"""Tests for the automatic policy extraction prototype (§VI future work)."""

import pytest

from repro.errors import SecurityError
from repro.kernel.policies.autogen import (
    ApiCallRecorder,
    RecordedCall,
    SynthesizedPolicy,
    _derive_features,
    extract_policy_for,
    synthesize_from_trace,
)
from repro.runtime.origin import Origin, parse_url


def test_feature_derivation_cross_origin():
    info = {
        "url": "https://victim.example/x",
        "origin": Origin("https", "app.example"),
        "base_url": parse_url("https://app.example/"),
    }
    assert _derive_features(info) == frozenset({"cross_origin"})
    info["url"] = "/same"
    assert _derive_features(info) == frozenset()


def test_feature_derivation_private_mode():
    assert _derive_features({"private_mode": True}) == frozenset({"private_mode"})
    assert _derive_features({"private_mode": False}) == frozenset()
    assert _derive_features({}) == frozenset()


def test_synthesize_dedups_rules():
    calls = [
        RecordedCall("indexedDB.put", frozenset({"private_mode"}), "k"),
        RecordedCall("indexedDB.put", frozenset({"private_mode"}), "k"),
        RecordedCall("setTimeout", frozenset(), "k"),
    ]
    policy = synthesize_from_trace(calls, "t")
    assert len(policy.rules) == 1


def test_synthesize_returns_none_for_benign_trace():
    calls = [RecordedCall("setTimeout", frozenset(), "k")]
    assert synthesize_from_trace(calls, "t") is None


def test_synthesized_policy_denies_matching_calls():
    policy = SynthesizedPolicy([("worker.xhr.send", frozenset({"cross_origin"}))], "t")
    info = {
        "url": "https://victim.example/x",
        "origin": Origin("https", "app.example"),
        "base_url": parse_url("https://app.example/"),
    }
    with pytest.raises(SecurityError):
        policy.on_api_call("worker.xhr.send", None, info)
    # same-origin passes; other APIs pass
    policy.on_api_call("worker.xhr.send", None, {**info, "url": "/same"})
    policy.on_api_call("fetch", None, info)
    assert "deny worker.xhr.send" in policy.describe()


def test_extraction_validates_for_info_leak_cves():
    for cve in ("cve-2013-1714", "cve-2017-7843"):
        result = extract_policy_for(cve)
        assert result.validated, (cve, result.note)
        assert result.policy is not None


def test_extraction_declines_uaf_class():
    """The honest boundary: liveness bugs need relational conditions."""
    result = extract_policy_for("cve-2018-5092")
    assert not result.validated
    assert result.policy is None


def test_extracted_policy_blocks_exploit_but_not_benign_use():
    from repro.attacks import create
    from repro.kernel import JSKernel
    from repro.runtime import Browser, vulnerable
    from repro.runtime.simtime import ms

    result = extract_policy_for("cve-2013-1714")

    # exploit blocked
    attack_result_browser = Browser(profile=vulnerable("firefox"), seed=3)
    kernel_b = JSKernel(policies=[result.policy])
    kernel_b.install(attack_result_browser)
    attack = create("cve-2013-1714")
    page = attack_result_browser.open_page(attack.page_url)
    attack.setup(attack_result_browser, page)
    assert attack.attempt(attack_result_browser, page) is False

    # benign same-origin worker XHR still works
    browser = Browser(profile=vulnerable("firefox"), seed=4)
    JSKernel(policies=[result.policy]).install(browser)
    browser.network.host_simple(parse_url("https://app.example/api"), 200, body="ok")
    benign_page = browser.open_page("https://app.example/")
    seen = {}

    def script(scope):
        def worker_main(ws):
            xhr = ws.XMLHttpRequest()
            xhr.open("GET", "/api")
            xhr.onload = lambda: ws.postMessage(xhr.response_text)
            xhr.send()

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.__setitem__("body", event.data)

    benign_page.run_script(script)
    browser.run(until=ms(500))
    assert seen["body"] == "ok"


def test_recorder_is_passive():
    recorder = ApiCallRecorder()
    recorder.on_api_call("setTimeout", type("K", (), {"label": "k"})(), {})
    assert len(recorder.trace) == 1
    assert recorder.trace[0].api == "setTimeout"
