"""Integration tests: every CVE row against the key defense columns.

The full 8-defense sweep lives in the Table I benchmark; here each CVE is
checked against the two decisive columns (vulnerable legacy vs JSKernel)
plus targeted ablations showing WHICH policy does the work.
"""

import pytest

from repro.attacks import create, cve_rows
from repro.attacks.expected import expected_matrix

EXPECTED = expected_matrix()


@pytest.mark.parametrize("cve_name", cve_rows())
def test_cve_triggers_on_vulnerable_legacy(cve_name):
    result = create(cve_name).run("legacy-firefox")
    assert result.success, f"{cve_name} should trigger on the vulnerable build: {result.detail}"


@pytest.mark.parametrize("cve_name", cve_rows())
def test_cve_prevented_by_jskernel(cve_name):
    result = create(cve_name).run("jskernel")
    assert result.defended, f"JSKernel should prevent {cve_name}: {result.detail}"


@pytest.mark.parametrize("cve_name", cve_rows())
def test_cve_chromezero_matches_paper(cve_name):
    result = create(cve_name).run("chromezero")
    assert result.defended == EXPECTED[cve_name]["chromezero"], result.detail


def test_lifecycle_cves_return_without_lifecycle_policy():
    """Ablation: deterministic scheduling alone does not stop the UAFs.

    (CVE-2014-3194 is excluded: the kernel stub's structural alive-check
    defends it even without any policy.)
    """
    for cve_name in ("cve-2018-5092", "cve-2014-1488"):
        result = create(cve_name).run("jskernel-nocve")
        assert result.success, f"{cve_name} should still trigger without CVE policies"


def test_stub_structure_alone_defends_post_after_terminate():
    """CVE-2014-3194 is stopped by the kernel interposition itself."""
    assert create("cve-2014-3194").run("jskernel-nocve").defended


def test_cve_policies_work_without_determinism():
    """Ablation: the CVE policies alone stop the CVEs (not the timing rows)."""
    for cve_name in ("cve-2018-5092", "cve-2013-1714", "cve-2017-7843"):
        result = create(cve_name).run("jskernel-nodet")
        assert result.defended, f"{cve_name}: {result.detail}"


def test_cve_details_identify_the_vulnerability():
    result = create("cve-2018-5092").run("legacy-chrome")
    assert "CVE-2018-5092" in result.detail


def test_information_leak_cves_report_leak_not_crash():
    for cve_name in ("cve-2017-7843", "cve-2015-7215", "cve-2013-1714"):
        result = create(cve_name).run("legacy-firefox")
        assert result.detail == "leak obtained"
