"""The hierarchical timer wheel must dispatch in exact seed-heap order.

The wheel (:mod:`repro.runtime.wheel`) replaced the simulator's binary
heap as the timed lane.  Its contract is total-order equivalence: for
any push/pop interleaving of ``(time, seq)`` entries — same-tick floods,
far-future cascades through the upper levels, overflow re-seating, late
pushes below the current ready window — pops come out in exactly
``sorted(entries, key=(time, seq))`` order, which is what the seed heap
produced.  Hypothesis drives arbitrary streams against a ``heapq``
mirror; targeted tests pin the structural edge cases, and a simulator-
level test checks dispatch order (with cancellations) against the
frozen :class:`ReferenceSimulator`.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.harness.bench_reference import ReferenceSimulator
from repro.runtime.simulator import Simulator
from repro.runtime.wheel import G_BITS, LEVELS, SLOT_BITS, TimerWheel


class Entry:
    """Minimal stand-in for ScheduledCall: the attributes the wheel reads."""

    __slots__ = ("time", "seq", "cancelled")

    def __init__(self, time, seq):
        self.time = time
        self.seq = seq
        self.cancelled = False

    def __lt__(self, other):  # heapq mirror ordering
        return (self.time, self.seq) < (other.time, other.seq)


#: One level-0 slot spans 2**G_BITS ns; the wheel addresses
#: G_BITS + LEVELS * SLOT_BITS bits before entries land in overflow.
SLOT_SPAN = 1 << G_BITS
ADDRESSABLE = 1 << (G_BITS + LEVELS * SLOT_BITS)

times = st.one_of(
    st.integers(min_value=0, max_value=4 * SLOT_SPAN),       # level 0
    st.integers(min_value=0, max_value=ADDRESSABLE - 1),     # upper levels
    st.integers(min_value=0, max_value=4 * ADDRESSABLE),     # overflow
)


def drain(wheel):
    out = []
    while True:
        entry = wheel.pop()
        if entry is None:
            return out
        out.append(entry)


@given(st.lists(times, max_size=200))
@settings(max_examples=200, deadline=None)
def test_pop_order_is_time_seq_sorted(time_list):
    wheel = TimerWheel()
    entries = [Entry(t, seq) for seq, t in enumerate(time_list)]
    for entry in entries:
        wheel.push(entry)
    assert drain(wheel) == sorted(entries, key=lambda e: (e.time, e.seq))


@given(
    st.lists(
        st.one_of(times.map(lambda t: ("push", t)), st.just(("pop", 0))),
        max_size=200,
    )
)
@settings(max_examples=200, deadline=None)
def test_interleaved_push_pop_matches_heap(ops):
    """Pops interleaved with pushes (including pushes into the past and
    below the drained ready window) match a heapq mirror step for step."""
    wheel = TimerWheel()
    mirror = []
    seq = 0
    for op, t in ops:
        if op == "push":
            entry = Entry(t, seq)
            seq += 1
            wheel.push(entry)
            heapq.heappush(mirror, entry)
        else:
            expected = heapq.heappop(mirror) if mirror else None
            assert wheel.pop() is expected
    assert drain(wheel) == [heapq.heappop(mirror) for _ in range(len(mirror))]


@given(st.integers(min_value=0, max_value=4 * ADDRESSABLE), st.integers(2, 50))
@settings(max_examples=100, deadline=None)
def test_same_tick_flood_preserves_seq_order(at, count):
    wheel = TimerWheel()
    entries = [Entry(at, seq) for seq in range(count)]
    for entry in reversed(entries):  # push in reverse seq order
        wheel.push(entry)
    assert drain(wheel) == entries


def test_far_future_entries_cascade_down():
    """Entries beyond level 0 reach the ready lane through cascades."""
    wheel = TimerWheel()
    spread = [Entry(i * (SLOT_SPAN << SLOT_BITS), i) for i in range(40)]
    for entry in reversed(spread):
        wheel.push(entry)
    assert drain(wheel) == spread


def test_overflow_entries_reseat_in_order():
    """Entries past the addressable horizon park in overflow, then
    re-seat into the wheel once the earlier levels drain."""
    wheel = TimerWheel()
    near = Entry(10, 0)
    far = [Entry(4 * ADDRESSABLE + i * SLOT_SPAN, i + 1) for i in range(20)]
    for entry in far:
        wheel.push(entry)
    wheel.push(near)
    assert wheel.pop() is near
    assert drain(wheel) == far


def test_late_push_below_ready_window_dispatches_next():
    """After draining begins, a push earlier than the primed window must
    come out before the rest of the window (heap semantics)."""
    wheel = TimerWheel()
    batch = [Entry(SLOT_SPAN * 3 + i * 100, i) for i in range(10)]
    for entry in batch:
        wheel.push(entry)
    first = wheel.pop()
    assert first is batch[0]
    late = Entry(first.time, 999)  # same tick as the drained head
    wheel.push(late)
    rest = drain(wheel)
    assert rest == sorted(batch[1:] + [late], key=lambda e: (e.time, e.seq))


@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=60),
    st.sets(st.integers(min_value=0, max_value=59)),
)
@settings(max_examples=100, deadline=None)
def test_simulator_dispatch_order_matches_seed_reference(delays, cancel_at):
    """Out-of-order schedules + cancellations dispatch identically on the
    wheel-backed Simulator and the frozen seed-heap ReferenceSimulator."""

    def run(sim_cls):
        sim = sim_cls()
        order = []
        calls = []
        for i, delay in enumerate(delays):
            # alternate in-order and out-of-order arrival
            at = delay * 1_000_000 if i % 2 == 0 else (200 - delay) * 1_000_000
            calls.append(
                sim.schedule(at, lambda i=i: order.append(i), label=f"e{i}")
            )
        for index in cancel_at:
            if index < len(calls):
                calls[index].cancel()
        sim.run()
        return order, sim.events_processed, sim._time

    assert run(Simulator) == run(ReferenceSimulator)
