"""Shared fixtures for the test suite."""

import pytest

from repro.kernel import JSKernel
from repro.runtime import Browser, chrome, vulnerable


@pytest.fixture
def browser():
    """A plain (bug-free) Chrome browser."""
    return Browser(profile=chrome(), seed=1)


@pytest.fixture
def vulnerable_browser():
    """A Chrome browser with every CVE bug flag enabled."""
    return Browser(profile=vulnerable("chrome"), seed=1)


@pytest.fixture
def page(browser):
    """A page on the plain browser."""
    return browser.open_page("https://app.example/")


@pytest.fixture
def kernel_browser():
    """A bug-free Chrome browser with the full JSKernel installed."""
    b = Browser(profile=chrome(), seed=1)
    JSKernel().install(b)
    return b


@pytest.fixture
def kernel_page(kernel_browser):
    """A page with the kernel injected."""
    return kernel_browser.open_page("https://app.example/")


def run_script_and_drain(browser, page, script, until_ms=2_000):
    """Helper: queue a script and run the simulation for a while."""
    page.run_script(script)
    browser.run(until=int(until_ms * 1e6))


@pytest.fixture
def drain():
    """The run_script_and_drain helper as a fixture."""
    return run_script_and_drain
