"""Tests for the mergeable quantile sketch and metric set.

The telemetry layer's correctness rests on two properties pinned here:

* **merge algebra** — folding sketches is associative and commutative,
  with the empty sketch as identity, and (for integer observations,
  below the compression bound) the serialized result is byte-identical
  no matter how the sample stream was partitioned.  This is what makes
  the parallel engine's merged snapshot equal the serial run's.
* **rank accuracy** — ``quantile(q)`` returns the mean of the centroid
  containing the sample of rank ``q*(n-1)``, so the estimate matches
  the exact percentile up to the sketch's relative value resolution
  (``~2*accuracy``), independent of sample count.  Hypothesis drives
  this against exact sorted-sample references.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.sketch import DEFAULT_QUANTILES, MetricSet, QuantileSketch


def make(values, **kwargs):
    sketch = QuantileSketch(**kwargs)
    for value in values:
        sketch.add(value)
    return sketch


def canonical(sketch):
    """Byte-comparable serialized form."""
    return json.dumps(sketch.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
def test_empty_sketch_reads_as_empty():
    sketch = QuantileSketch()
    assert len(sketch) == 0
    assert sketch.quantile(0.5) is None
    assert sketch.mean is None
    assert sketch.centroid_count() == 0
    assert sketch.quantiles() == {"p50": None, "p90": None, "p95": None, "p99": None}


def test_extremes_are_exact():
    sketch = make([7, 3, 3, 9, 100, 0])
    assert sketch.quantile(0.0) == 0  # exact min
    assert sketch.quantile(1.0) == 100  # exact max
    assert sketch.min == 0 and sketch.max == 100
    assert len(sketch) == 6
    assert sketch.total == sum([7, 3, 3, 9, 100, 0])
    assert sketch.mean == pytest.approx(sum([7, 3, 3, 9, 100]) / 6)


def test_heavy_ties_do_not_smear_the_median():
    # 100 zeros and one huge outlier: p50 (and even p99) must be 0 —
    # interpolating across the zero centroid would report ~1e10.
    sketch = make([0] * 100 + [10**12])
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(0.99) == 0.0
    assert sketch.quantile(1.0) == 10**12


def test_quantile_labels():
    sketch = make([1, 2, 3])
    assert set(sketch.quantiles().keys()) == {"p50", "p90", "p95", "p99"}
    assert set(sketch.quantiles([0.5, 0.999]).keys()) == {"p50", "p99_9"}
    assert DEFAULT_QUANTILES == (0.5, 0.9, 0.95, 0.99)


def test_validation():
    with pytest.raises(ValueError):
        QuantileSketch(accuracy=0.0)
    with pytest.raises(ValueError):
        QuantileSketch(accuracy=1.5)
    with pytest.raises(ValueError):
        QuantileSketch(max_centroids=2)
    sketch = QuantileSketch()
    with pytest.raises(ValueError):
        sketch.add(1, weight=0)
    sketch.add(1)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    with pytest.raises(ValueError):
        sketch.merge(QuantileSketch(accuracy=0.1))


def test_weighted_add_equals_repeated_add():
    repeated = make([42] * 5 + [-7] * 3)
    weighted = QuantileSketch()
    weighted.add(42, weight=5)
    weighted.add(-7, weight=3)
    assert canonical(weighted) == canonical(repeated)


# ----------------------------------------------------------------------
# rank accuracy vs exact percentiles
# ----------------------------------------------------------------------
def assert_tracks_exact(sketch, sorted_samples, q, accuracy=0.005):
    """The estimate matches the floor-rank exact sample to ~2*accuracy."""
    est = sketch.quantile(q)
    ref = sorted_samples[math.floor(q * (len(sorted_samples) - 1))]
    gamma = (1.0 + accuracy) / (1.0 - accuracy)
    tolerance = abs(ref) * (gamma - 1.0) + 1e-9
    assert ref - tolerance <= est <= ref + tolerance, (
        f"q={q}: estimate {est} not within {tolerance} of exact rank value {ref}"
    )


@given(
    samples=st.lists(
        st.integers(min_value=-(10**12), max_value=10**12), min_size=1, max_size=300
    ),
    q=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=150, deadline=None)
def test_quantiles_track_exact_percentiles(samples, q):
    sketch = make(samples)
    assert_tracks_exact(sketch, sorted(samples), q)


def test_quantiles_track_numpy_percentiles_on_a_latency_shape():
    numpy = pytest.importorskip("numpy")
    rng = random.Random(7)
    # log-normal-ish nanosecond latencies with a heavy zero mode, the
    # shape the queue-delay sketches actually see
    samples = [0] * 2000 + [int(math.exp(rng.gauss(10, 2))) for _ in range(8000)]
    rng.shuffle(samples)
    sketch = make(samples)
    ordered = sorted(samples)
    for q in (0.5, 0.9, 0.95, 0.99):
        est = sketch.quantile(q)
        # within 1% *rank* error of the exact percentile: bracketed by
        # the exact samples one rank-percent either side, widened by the
        # sketch's relative value resolution
        lo = ordered[max(0, math.floor((q - 0.01) * (len(ordered) - 1)))]
        hi = ordered[min(len(ordered) - 1, math.ceil((q + 0.01) * (len(ordered) - 1)))]
        assert lo * 0.989 - 1e-9 <= est <= hi * 1.011 + 1e-9
        # and the numpy percentile itself sits inside the same bracket
        exact = float(numpy.percentile(ordered, q * 100))
        assert lo <= exact <= hi


# ----------------------------------------------------------------------
# merge algebra (satellite: associativity/commutativity/identity)
# ----------------------------------------------------------------------
@given(
    samples=st.lists(
        st.integers(min_value=-(10**9), max_value=10**9), max_size=150
    ),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=100, deadline=None)
def test_merge_is_associative_commutative_and_partition_invariant(samples, seed):
    rng = random.Random(seed)
    parts = [[], [], []]
    for value in samples:
        parts[rng.randrange(3)].append(value)
    a, b, c = parts

    whole = canonical(make(samples))
    left = canonical(make(a).merge(make(b)).merge(make(c)))
    right = canonical(make(a).merge(make(b).merge(make(c))))
    commuted = canonical(make(c).merge(make(a)).merge(make(b)))
    # byte-identical no matter the association, order, or partitioning
    assert left == right == commuted == whole


def test_empty_sketch_is_the_merge_identity():
    samples = [5, 0, -3, 10**6, 5]
    populated = canonical(make(samples))
    assert canonical(make(samples).merge(QuantileSketch())) == populated
    assert canonical(QuantileSketch().merge(make(samples))) == populated


def test_merge_accepts_the_serialized_form():
    a, b = make([1, 2, 3]), make([4, 5])
    merged = make([1, 2, 3]).merge(b.to_dict())
    assert canonical(merged) == canonical(a.merge(b))


def test_serialization_round_trip_is_exact():
    sketch = make([0, 0, 1, -17, 10**9, 3, 3, 3])
    wire = json.loads(json.dumps(sketch.to_dict()))
    revived = QuantileSketch.from_dict(wire)
    assert canonical(revived) == canonical(sketch)
    for q in (0.0, 0.25, 0.5, 0.95, 1.0):
        assert revived.quantile(q) == sketch.quantile(q)


# ----------------------------------------------------------------------
# compression bound
# ----------------------------------------------------------------------
def test_collapse_respects_the_bound_and_keeps_exact_moments():
    values = [2**k for k in range(40)] + [-(3**k) for k in range(20)]
    sketch = make(values, max_centroids=8)
    assert len(sketch.pos) + len(sketch.neg) <= 8
    # counts and sums are exact even after collapsing
    assert sketch.count == len(values)
    assert sketch.total == sum(values)
    assert sketch.min == min(values) and sketch.max == max(values)
    # collapsing folds low-magnitude centroids upward, so the upper
    # quantiles keep their resolution
    ordered = sorted(values)
    assert_tracks_exact(sketch, ordered, 0.99)
    assert sketch.quantile(0.5) is not None


def test_merge_collapses_to_the_tighter_bound():
    a = make([2**k for k in range(30)], max_centroids=64)
    b = make([5**k for k in range(10)], max_centroids=8)
    a.merge(b)
    assert a.max_centroids == 8
    assert len(a.pos) + len(a.neg) <= 8
    assert a.count == 40


# ----------------------------------------------------------------------
# MetricSet
# ----------------------------------------------------------------------
def histogram_snapshot(bounds, counts, total, count, lo, hi):
    return {
        "bounds": bounds,
        "counts": counts,
        "sum": total,
        "count": count,
        "min": lo,
        "max": hi,
    }


def test_metric_set_merges_counters_gauges_histograms_and_sketches():
    metrics = MetricSet()
    metrics.inc("cells", 2)
    metrics.set_gauge("depth", 1.0)
    metrics.observe("lat", 10)
    snapshot = {
        "counters": {"cells": 3, "other": 1},
        "gauges": {"depth": 4.0},
        "histograms": {"h": histogram_snapshot([10, 100], [1, 2, 1], 150, 4, 3, 120)},
        "sketches": {"lat": make([20, 30]).to_dict()},
    }
    metrics.merge_snapshot(snapshot)
    metrics.merge_snapshot(snapshot)

    assert metrics.counters == {"cells": 8, "other": 2}
    assert metrics.gauges == {"depth": 4.0}  # last write wins
    merged = metrics.histograms["h"]
    assert merged["counts"] == [2, 4, 2]
    assert merged["count"] == 8 and merged["sum"] == 300
    assert merged["min"] == 3 and merged["max"] == 120
    assert metrics.sketches["lat"].count == 5  # 1 observed + 2x2 merged
    assert canonical(metrics.sketches["lat"]) == canonical(make([10, 20, 30, 20, 30]))


def test_metric_set_rejects_histogram_bucket_mismatch_and_negative_counters():
    metrics = MetricSet()
    metrics.merge_snapshot(
        {"histograms": {"h": histogram_snapshot([10], [1, 0], 5, 1, 5, 5)}}
    )
    with pytest.raises(ValueError, match="bucket mismatch"):
        metrics.merge_snapshot(
            {"histograms": {"h": histogram_snapshot([20], [1, 0], 5, 1, 5, 5)}}
        )
    with pytest.raises(ValueError, match="decrement"):
        metrics.inc("c", -1)


def test_merged_sketch_selects_by_prefix_without_mutating():
    metrics = MetricSet()
    for value in (1, 2, 3):
        metrics.observe("eventloop.queue_delay_ns.main", value)
    for value in (10, 20):
        metrics.observe("eventloop.queue_delay_ns.worker", value)
    metrics.observe("kernel.latency_ns", 999)

    merged = metrics.merged_sketch("eventloop.queue_delay_ns.")
    assert merged.count == 5
    assert merged.max == 20  # kernel sketch not included
    # reading never mutates the stored sketches
    assert metrics.sketches["eventloop.queue_delay_ns.main"].count == 3
    assert metrics.merged_sketch("no.such.prefix") is None


def test_metric_set_round_trip():
    metrics = MetricSet()
    metrics.inc("a")
    metrics.set_gauge("g", 2.5)
    metrics.observe("s", 7)
    revived = MetricSet.from_dict(json.loads(json.dumps(metrics.to_dict())))
    assert json.dumps(revived.to_dict(), sort_keys=True) == json.dumps(
        metrics.to_dict(), sort_keys=True
    )
