"""Integration tests for native WebWorkers (no kernel)."""

import pytest

from repro.errors import NullDerefError, UseAfterFreeError
from repro.runtime import Browser, chrome
from repro.runtime.network import Resource
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms


def make(bug=None):
    profile = chrome()
    if bug:
        profile.bugs[bug] = True
    browser = Browser(profile=profile, seed=1)
    page = browser.open_page("https://app.example/")
    return browser, page


def test_worker_round_trip():
    browser, page = make()
    seen = []

    def script(scope):
        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage(event.data * 2)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)
        worker.postMessage(21)

    page.run_script(script)
    browser.run(until=ms(100))
    assert seen == [42]


def test_messages_before_script_evaluation_are_queued():
    """HTML semantics: the port is held until the initial script runs."""
    browser, page = make()
    seen = []

    def script(scope):
        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage(f"got:{event.data}")

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)
        # posted immediately, long before the spawn latency elapses
        worker.postMessage("early")

    page.run_script(script)
    browser.run(until=ms(100))
    assert seen == ["got:early"]


def test_worker_runs_in_parallel_with_main_thread():
    browser, page = make()
    arrival = {}

    def script(scope):
        def worker_main(ws):
            ws.setTimeout(lambda: ws.postMessage("tick"), 2)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: arrival.__setitem__("at", browser.sim.now)
        # main thread blocks from 3ms..20ms; worker keeps running
        scope.setTimeout(lambda: scope.busy_work(17.0), 3)

    page.run_script(script)
    browser.run(until=ms(100))
    # message was SENT during the block (worker parallel) but processed after
    assert arrival["at"] >= ms(20)


def test_terminate_stops_worker_tasks():
    browser, page = make()
    ticks = []

    def script(scope):
        def worker_main(ws):
            def tick():
                ticks.append(browser.sim.now)
                ws.setTimeout(tick, 1)

            ws.setTimeout(tick, 1)

        worker = scope.Worker(worker_main)
        scope.setTimeout(worker.terminate, 10)

    page.run_script(script)
    browser.run(until=ms(60))
    assert ticks  # it did run
    assert all(t <= ms(11) for t in ticks)


def test_post_after_terminate_dropped_silently_when_fixed():
    browser, page = make()  # no bugs
    box = {}

    def script(scope):
        worker = scope.Worker(lambda ws: None)
        worker.terminate()

        def late():
            worker.postMessage("x")
            worker.onmessage = lambda event: None
            box["survived"] = True

        scope.setTimeout(late, 5)

    page.run_script(script)
    browser.run(until=ms(50))
    assert box.get("survived")


def test_post_after_terminate_uaf_with_bug():
    browser, page = make(bug="cve_2014_3194")

    def script(scope):
        worker = scope.Worker(lambda ws: None)
        worker.terminate()
        scope.setTimeout(lambda: worker.postMessage("x"), 5)

    page.run_script(script)
    with pytest.raises(UseAfterFreeError):
        browser.run(until=ms(50))


def test_onmessage_after_terminate_null_deref_with_bug():
    browser, page = make(bug="cve_2013_5602")

    def script(scope):
        worker = scope.Worker(lambda ws: None)
        worker.terminate()

        def late():
            worker.onmessage = lambda event: None

        scope.setTimeout(late, 5)

    page.run_script(script)
    with pytest.raises(NullDerefError):
        browser.run(until=ms(50))


def test_cross_origin_worker_creation_error_sanitized():
    browser, page = make()  # fixed browser
    seen = {}

    def script(scope):
        worker = scope.Worker("https://victim.example/w.js")
        worker.onerror = lambda event: seen.__setitem__("message", event.message)

    page.run_script(script)
    browser.run(until=ms(100))
    assert seen["message"] == "Script error."


def test_cross_origin_worker_creation_error_leaks_with_bug():
    browser, page = make(bug="cve_2014_1487")
    seen = {}

    def script(scope):
        worker = scope.Worker("https://victim.example/w.js")
        worker.onerror = lambda event: seen.__setitem__("message", event.message)

    page.run_script(script)
    browser.run(until=ms(100))
    assert "victim.example" in seen["message"]


def test_worker_from_url_resource():
    browser, page = make()
    browser.network.host(
        Resource(
            parse_url("https://app.example/worker.js"),
            2_000,
            "text/javascript",
            body=lambda ws: ws.postMessage("loaded"),
        )
    )
    seen = []

    def script(scope):
        worker = scope.Worker("/worker.js")
        worker.onmessage = lambda event: seen.append(event.data)

    page.run_script(script)
    browser.run(until=ms(200))
    assert seen == ["loaded"]


def test_import_scripts_same_origin_runs_body():
    browser, page = make()
    browser.network.host(
        Resource(
            parse_url("https://app.example/lib.js"),
            1_000,
            "text/javascript",
            body=lambda ws: setattr(ws, "lib_loaded", True),
        )
    )
    seen = {}

    def script(scope):
        def worker_main(ws):
            ws.importScripts("/lib.js")
            ws.postMessage(getattr(ws, "lib_loaded", False))

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.__setitem__("loaded", event.data)

    page.run_script(script)
    browser.run(until=ms(200))
    assert seen["loaded"] is True


def test_worker_self_close():
    browser, page = make()
    box = {}

    def script(scope):
        def worker_main(ws):
            ws.setTimeout(ws.close, 2)

        worker = scope.Worker(worker_main)
        box["worker"] = worker

    page.run_script(script)
    browser.run(until=ms(100))
    assert box["worker"].state == "terminated"


def test_transfer_to_worker_detaches_sender():
    browser, page = make()
    box = {}

    def script(scope):
        buffer = scope.ArrayBuffer(128)
        box["buffer"] = buffer

        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage(len(event.transferred))

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: box.__setitem__("views", event.data)
        worker.postMessage("take", transfer=[buffer])

    page.run_script(script)
    browser.run(until=ms(100))
    assert box["buffer"].detached
    assert box["views"] == 1
