"""Unit tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.runtime.simulator import ExecutionFrame, Simulator


def test_events_dispatch_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(300, lambda: order.append("c"))
    sim.schedule(100, lambda: order.append("a"))
    sim.schedule(200, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_equal_times_dispatch_fifo():
    sim = Simulator()
    order = []
    for name in "abc":
        sim.schedule(50, lambda n=name: order.append(n))
    sim.run()
    assert order == ["a", "b", "c"]


def test_cancelled_events_do_not_run():
    sim = Simulator()
    ran = []
    call = sim.schedule(10, lambda: ran.append(1))
    call.cancel()
    sim.run()
    assert ran == []
    assert sim.pending_events == 0


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    assert sim.dispatch_time == 100
    with pytest.raises(SimulationError):
        sim.schedule(50, lambda: None)


def test_run_until_time_stops_before_later_events():
    sim = Simulator()
    ran = []
    sim.schedule(100, lambda: ran.append("early"))
    sim.schedule(10_000, lambda: ran.append("late"))
    sim.run(until=1_000)
    assert ran == ["early"]
    assert sim.now == 1_000
    sim.run()
    assert ran == ["early", "late"]


def test_run_until_predicate():
    sim = Simulator()
    box = {}
    sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: box.__setitem__("done", True))
    sim.schedule(30, lambda: box.__setitem__("extra", True))
    sim.run_until(lambda: "done" in box)
    assert "done" in box
    assert "extra" not in box


def test_run_until_raises_on_drained_queue():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    with pytest.raises(DeadlockError):
        sim.run_until(lambda: False)


def test_runaway_backstop():
    sim = Simulator()

    def respawn():
        sim.schedule(sim.now + 1, respawn)

    sim.schedule(0, respawn)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def _respawning_sim(label="spin"):
    sim = Simulator()

    def respawn():
        sim.schedule(sim.now + 1, respawn, label=label)

    sim.schedule(0, respawn, label=label)
    return sim


def test_backstop_error_includes_recent_labels():
    sim = _respawning_sim(label="hot-loop")
    with pytest.raises(SimulationError) as info:
        sim.run(max_events=50)
    assert "hot-loop" in str(info.value)
    assert "last dispatched" in str(info.value)


def test_backstop_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EVENTS", "25")
    sim = _respawning_sim()
    with pytest.raises(SimulationError) as info:
        sim.run()
    assert "25 events" in str(info.value)


def test_backstop_env_applies_to_run_until(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EVENTS", "25")
    sim = _respawning_sim()
    with pytest.raises(SimulationError):
        sim.run_until(lambda: False)


def test_backstop_env_invalid_values(monkeypatch):
    sim = _respawning_sim()
    monkeypatch.setenv("REPRO_MAX_EVENTS", "not-a-number")
    with pytest.raises(SimulationError):
        sim.run()
    monkeypatch.setenv("REPRO_MAX_EVENTS", "0")
    with pytest.raises(SimulationError):
        sim.run()


def test_backstop_parameter_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EVENTS", "1000000")
    sim = _respawning_sim()
    with pytest.raises(SimulationError) as info:
        sim.run(max_events=10)
    assert "10 events" in str(info.value)


def test_frames_report_local_time():
    sim = Simulator()
    seen = {}

    def task():
        frame = ExecutionFrame(sim.dispatch_time, "t")
        sim.push_frame(frame)
        frame.consume(500)
        seen["mid"] = sim.now
        frame.consume(500)
        seen["end"] = sim.now
        sim.pop_frame()

    sim.schedule(1_000, task)
    sim.run()
    assert seen == {"mid": 1_500, "end": 2_000}


def test_consume_outside_frame_is_noop():
    sim = Simulator()
    sim.consume(1_000_000)
    assert sim.now == 0


def test_negative_cost_rejected():
    frame = ExecutionFrame(0, "t")
    with pytest.raises(SimulationError):
        frame.consume(-1)


def test_pop_without_frame_raises():
    with pytest.raises(SimulationError):
        Simulator().pop_frame()


def test_schedule_after_uses_local_time():
    sim = Simulator()
    fired_at = {}

    def task():
        frame = ExecutionFrame(sim.dispatch_time, "t")
        sim.push_frame(frame)
        frame.consume(700)
        sim.schedule_after(300, lambda: fired_at.__setitem__("t", sim.now))
        sim.pop_frame()

    sim.schedule(1_000, task)
    sim.run()
    assert fired_at["t"] == 2_000  # 1000 start + 700 local + 300 delay


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 5


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
def test_dispatch_order_is_sorted(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.schedule(t, lambda t=t: seen.append(t))
    sim.run()
    assert seen == sorted(times)
