"""Integration tests for Page and Browser wiring."""

import pytest

from repro.runtime import by_name, chrome, edge, firefox, vulnerable
from repro.runtime.network import Resource
from repro.runtime.origin import parse_url
from repro.runtime.profiles import ALL_BUGS
from repro.runtime.simtime import ms


def test_browser_profiles_have_distinct_characteristics():
    c, f, e = chrome(), firefox(), edge()
    assert c.clock_resolution_ns < f.clock_resolution_ns
    assert e.frame_interval_ns > c.frame_interval_ns
    assert by_name("chrome").name == "chrome"
    with pytest.raises(KeyError):
        by_name("netscape")


def test_vulnerable_profile_enables_all_bugs():
    profile = vulnerable("firefox")
    for flag in ALL_BUGS:
        assert profile.has_bug(flag)
    assert not chrome().has_bug("cve_2018_5092")


def test_profile_clone_overrides():
    base = chrome()
    clone = base.clone(name="custom", task_dispatch_cost=1)
    assert clone.name == "custom"
    assert clone.task_dispatch_cost == 1
    assert base.task_dispatch_cost != 1
    clone.bugs["x"] = True
    assert not base.bugs.get("x")


def test_page_script_sees_window_apis(browser, page):
    seen = {}

    def script(scope):
        seen["now"] = scope.performance.now()
        seen["has_document"] = scope.document is not None
        seen["has_fetch"] = callable(scope.fetch)
        seen["has_worker"] = callable(scope.Worker)

    page.run_script(script)
    browser.run(until=ms(10))
    assert seen["has_document"] and seen["has_fetch"] and seen["has_worker"]


def test_script_element_load_fires_after_transfer_and_parse(browser, page):
    browser.network.host_simple(
        parse_url("https://app.example/app.js"), 12_000, body=lambda scope: None
    )
    events = {}

    def script(scope):
        el = scope.document.create_element("script")
        el.onload = lambda: events.__setitem__("loaded_at", browser.sim.now)
        scope.document.body.append_child(el)
        el.set_attribute("src", "/app.js")

    page.run_script(script)
    browser.run(until=ms(5_000))
    # network (8ms + 10ms transfer) + parse (12KB * 90ns ~ 1.1ms)
    assert events["loaded_at"] > ms(18)


def test_failed_load_fires_onerror(browser, page):
    events = []

    def script(scope):
        el = scope.document.create_element("img")
        el.onload = lambda: events.append("load")
        el.onerror = lambda: events.append("error")
        scope.document.body.append_child(el)
        el.set_attribute("src", "/missing.png")

    page.run_script(script)
    browser.run(until=ms(1_000))
    assert events == ["error"]


def test_page_load_event_waits_for_subresources(browser, page):
    browser.network.host_simple(parse_url("https://app.example/a.js"), 6_000,
                                body=lambda s: None)
    browser.network.host_simple(parse_url("https://app.example/b.png"), 3_000)
    order = []

    def script(scope):
        for path, tag in (("/a.js", "script"), ("/b.png", "img")):
            el = scope.document.create_element(tag)
            el.onload = lambda p=path: order.append(p)
            scope.document.body.append_child(el)
            el.set_attribute("src", path)
        page.arm_load_event()

    page.on_load(lambda: order.append("load-event"))
    page.run_script(script)
    browser.run(until=ms(5_000))
    assert order[-1] == "load-event"
    assert set(order[:-1]) == {"/a.js", "/b.png"}
    assert page.loaded and page.load_time_ns is not None


def test_window_self_post_message(browser, page):
    seen = []

    def script(scope):
        scope.onmessage = lambda event: seen.append(event.data)
        scope.postMessage("loop")

    page.run_script(script)
    browser.run(until=ms(50))
    assert seen == ["loop"]


def test_history_visited(browser):
    browser.visit("https://a.example/")
    assert browser.is_visited("https://a.example/")
    assert not browser.is_visited("https://b.example/")


def test_private_page_isolated_storage(browser):
    normal = browser.open_page("https://site.example/")
    private = browser.open_page("https://site.example/", private=True)
    box = {}
    normal.run_script(lambda scope: scope.indexedDB.put("k", "v"))
    private.run_script(lambda scope: box.__setitem__("private", scope.indexedDB.get("k")))
    browser.run(until=ms(10))
    assert box["private"] is None  # private mode cannot read normal data


def test_chunked_processing_yields_to_timers(browser, page):
    """A long decode must interleave with timers (progressive decoding)."""
    from repro.runtime.svgfilter import SimImage

    browser.network.host(
        Resource(
            parse_url("https://app.example/big.png"),
            90_000,
            "image/png",
            body=SimImage(2500, 2500),
        )
    )
    ticks = []

    def script(scope):
        def tick():
            ticks.append(browser.sim.now)
            scope.setTimeout(tick, 1)

        scope.setTimeout(tick, 1)
        el = scope.document.create_element("img")
        el.onload = lambda: ticks.append("done")
        scope.document.body.append_child(el)
        el.set_attribute("src", "/big.png")

    page.run_script(script)
    browser.run(until=ms(400))
    done_index = ticks.index("done")
    assert done_index > 5  # several ticks ran during the ~16ms decode


def test_fragility_injects_load_failures(browser, page):
    page.load_failure_rate = 1.0
    browser.network.host_simple(parse_url("https://app.example/x.png"), 100)
    events = []

    def script(scope):
        el = scope.document.create_element("img")
        el.onerror = lambda: events.append("error")
        scope.document.body.append_child(el)
        el.set_attribute("src", "/x.png")

    page.run_script(script)
    browser.run(until=ms(1_000))
    assert events == ["error"]
