"""Tests for the schedule-space exploration subsystem (repro.explore)."""

import json
import random

import pytest

from repro.errors import ReproError
from repro.explore.campaign import (
    generate_trial,
    interesting_labels,
    run_campaign,
    run_fuzz_cell,
)
from repro.explore.faults import FaultPlan
from repro.explore.minimize import (
    build_specs,
    ddmin,
    load_witness,
    minimize_witness,
    replay_witness,
    save_witness,
    witness_atoms,
)
from repro.explore.oracles import evaluate_run, kernel_order_violations, signature
from repro.explore.perturb import (
    JitterPerturber,
    PriorityPerturber,
    TargetedPerturber,
    exempt_label,
    label_class,
    make_perturber,
)
from repro.runtime import Browser, chrome
from repro.runtime.eventloop import EventLoop
from repro.runtime.network import NetworkFault, SimNetwork
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator, current_perturber, perturbation


# ----------------------------------------------------------------------
# perturbation strategies
# ----------------------------------------------------------------------
def test_jitter_is_deterministic_per_spec():
    spec = {"strategy": "jitter", "seed": 7, "rate": 0.8, "magnitude_ns": ms(1)}
    labels = ["net:/a", "timer:cb", "net:/a", "worker-1:boot", "net:/a"]
    a = make_perturber(spec)
    b = make_perturber(spec)
    sim = Simulator()
    assert [a.perturb(sim, 1000, lbl) for lbl in labels] == [
        b.perturb(sim, 1000, lbl) for lbl in labels
    ]


def test_perturbation_only_delays():
    for spec in (
        {"strategy": "jitter", "seed": 3, "rate": 1.0, "magnitude_ns": ms(2)},
        {"strategy": "priority", "seed": 3, "levels": 4, "step_ns": ms(1)},
        {"strategy": "targeted", "rules": [{"match": "net:", "delay_ns": ms(5)}]},
    ):
        p = make_perturber(spec)
        sim = Simulator()
        for label in ("net:/x", "timer:cb", "chan:deliver"):
            assert p.perturb(sim, 12_345, label) >= 12_345


def test_exempt_labels_untouched():
    p = JitterPerturber(seed=1, rate=1.0, magnitude_ns=ms(10))
    sim = Simulator()
    assert p.perturb(sim, 500, "main:wake") == 500
    assert p.perturb(sim, 500, "fault:net-abort") == 500
    assert p.perturb(sim, 500, "") == 500
    assert exempt_label("worker-1:wake")
    assert not exempt_label("worker-1:boot")


def test_jitter_decisions_are_per_label_streams():
    """An extra draw on one label must not shift another label's stream."""
    spec = {"strategy": "jitter", "seed": 5, "rate": 1.0, "magnitude_ns": ms(1)}
    sim = Simulator()
    a = make_perturber(spec)
    first = [a.perturb(sim, 0, "net:/x") for _ in range(3)]
    b = make_perturber(spec)
    b.perturb(sim, 0, "timer:cb")  # unrelated label interleaved
    second = [b.perturb(sim, 0, "net:/x") for _ in range(3)]
    assert first == second


def test_priority_uses_label_classes():
    assert label_class("worker-3:boot") == label_class("worker-12:boot")
    p = PriorityPerturber(seed=2, levels=3, step_ns=ms(1), change_every=4)
    sim = Simulator()
    d1 = p.perturb(sim, 0, "worker-1:boot")
    # same class: the stream advances, but delays stay on the level grid
    d2 = p.perturb(sim, 0, "worker-2:boot")
    assert d1 % ms(1) == 0 and d2 % ms(1) == 0


def test_targeted_rules_sum_and_spec_roundtrip():
    rules = [
        {"match": "net:", "delay_ns": ms(1)},
        {"match": "/x", "delay_ns": ms(2)},
    ]
    p = TargetedPerturber(rules=rules)
    sim = Simulator()
    assert p.perturb(sim, 0, "net:/x") == ms(3)
    assert p.perturb(sim, 0, "net:/y") == ms(1)
    assert p.perturb(sim, 0, "timer:cb") == 0
    rebuilt = make_perturber(p.spec())
    assert rebuilt.spec() == p.spec()


def test_make_perturber_none_and_unknown():
    assert make_perturber(None) is None
    assert make_perturber({"strategy": "none"}) is None
    with pytest.raises(ReproError):
        make_perturber({"strategy": "quantum"})


def test_perturbation_context_reaches_new_simulators():
    p = JitterPerturber(seed=1, rate=1.0, magnitude_ns=ms(1))
    assert current_perturber() is None
    with perturbation(p):
        sim = Simulator()
        assert sim.perturber is p
    assert current_perturber() is None
    assert Simulator().perturber is None


def test_targeted_perturbation_reorders_eventloop_tasks():
    """Delaying one task source flips the dispatch order of two tasks."""

    def run_once(rules):
        with perturbation(TargetedPerturber(rules=rules)) if rules else _null():
            sim = Simulator()
            loop = EventLoop(sim, "main", task_dispatch_cost=0)
            order = []
            loop.post(lambda: order.append("a"), delay=1000, label="msg:a")
            loop.post(lambda: order.append("b"), delay=2000, label="net:b")
            sim.run()
            return order

    from contextlib import nullcontext as _null

    assert run_once(None) == ["a", "b"]
    assert run_once([{"match": "msg:a", "delay_ns": ms(5)}]) == ["b", "a"]


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
def _net_env():
    sim = Simulator()
    loop = EventLoop(sim, "main", task_dispatch_cost=0)
    network = SimNetwork(random.Random(1), jitter_ns=0, bandwidth_bytes_per_ms=1_000)
    network.host_simple(parse_url("https://app.example/data"), 1_000, body="ok")
    return sim, loop, network


def test_latency_fault_window_delays_delivery():
    sim, loop, network = _net_env()
    baseline = []
    network.request(loop, parse_url("https://app.example/data"),
                    lambda r: baseline.append(sim.now), use_cache=False)
    sim.run()

    sim2, loop2, network2 = _net_env()
    network2.faults.append(
        NetworkFault("latency", 0, ms(100), extra_ns=ms(50))
    )
    delayed = []
    network2.request(loop2, parse_url("https://app.example/data"),
                     lambda r: delayed.append(sim2.now), use_cache=False)
    sim2.run()
    assert delayed[0] == baseline[0] + ms(50)


def test_drop_fault_blackholes_response():
    sim, loop, network = _net_env()
    network.faults.append(NetworkFault("drop", 0, ms(100)))
    delivered = []
    request = network.request(loop, parse_url("https://app.example/data"),
                              lambda r: delivered.append(r), use_cache=False)
    sim.run()
    assert delivered == []
    assert request.dropped
    assert network.requests_dropped == 1


def test_fault_windows_respect_time_and_path():
    fault = NetworkFault("latency", ms(10), ms(20), extra_ns=ms(1), path_contains="/a")
    url_a = parse_url("https://x.example/a")
    url_b = parse_url("https://x.example/b")
    assert fault.matches(ms(15), url_a)
    assert not fault.matches(ms(5), url_a)   # before the window
    assert not fault.matches(ms(20), url_a)  # window end is exclusive
    assert not fault.matches(ms(15), url_b)  # path mismatch


def test_abort_inflight_cancels_pending_requests():
    sim, loop, network = _net_env()
    delivered = []
    request = network.request(loop, parse_url("https://app.example/data"),
                              lambda r: delivered.append(r), use_cache=False)
    aborted = network.abort_inflight("")
    sim.run()
    assert aborted == 1
    assert request.cancelled
    assert delivered == []


def test_unknown_fault_kind_rejected():
    with pytest.raises(ReproError):
        NetworkFault("gamma-rays", 0, 1)


def test_fault_plan_roundtrip_and_atoms():
    plan = FaultPlan(
        network=[{"kind": "drop", "until_ns": ms(10)}],
        aborts=[{"at_ns": ms(5)}],
        crashes=[{"at_ns": ms(7), "worker": 1}],
    )
    assert not plan.empty
    assert FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()
    atoms = plan.atoms()
    assert len(atoms) == 3
    only_crash = plan.subset([("crashes", 0)])
    assert only_crash.network == [] and only_crash.aborts == []
    assert len(only_crash.crashes) == 1
    assert FaultPlan.from_dict(None).empty


def test_worker_crash_fault_fires_onerror_and_terminates():
    plan = FaultPlan(crashes=[{"at_ns": ms(30), "worker": 0, "detail": "boom"}])
    errors = []
    with plan.apply():
        browser = Browser(profile=chrome(), seed=1)
        page = browser.open_page("https://app.example/")

        def script(scope):
            def worker_main(ws):
                ws.onmessage = lambda event: None

            worker = scope.Worker(worker_main)
            worker.onerror = lambda event: errors.append(event.message)

        page.run_script(script)
        browser.run(until=ms(100))
    assert errors == ["boom"]
    assert browser.workers[0].state == "terminated"
    assert browser.workers[0].termination_reason == "crash"


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------
def test_evaluate_run_flags_undefended_uaf():
    verdict = evaluate_run("cve-2018-5092", "legacy-chrome", 0)
    assert verdict["interesting"]
    assert "race:use-after-free" in verdict["failures"]
    assert "crash" in verdict["failures"]
    assert verdict["uaf_races"] >= 1
    # verdict must be JSON-pure (it rides in cells and witness files)
    assert json.loads(json.dumps(verdict)) == verdict


def test_evaluate_run_is_deterministic():
    kwargs = dict(
        perturb_spec={"strategy": "jitter", "seed": 9, "rate": 0.5, "magnitude_ns": ms(1)},
        fault_spec={"network": [{"kind": "latency", "until_ns": ms(50), "extra_ns": ms(2)}]},
    )
    a = evaluate_run("cve-2018-5092", "legacy-chrome", 0, **kwargs)
    b = evaluate_run("cve-2018-5092", "legacy-chrome", 0, **kwargs)
    assert a == b


def test_evaluate_run_jskernel_clean():
    verdict = evaluate_run("cve-2018-5092", "jskernel", 0)
    assert verdict["failures"] == []
    assert verdict["order_violations"] == 0
    assert verdict["divergence"] == 0  # determinism auto-checked for jskernel


def test_kernel_order_violation_counting():
    events = [
        {"name": "kernel.order-violation", "ph": "i"},
        {"name": "other", "ph": "i"},
        {"name": "kernel.order-violation", "ph": "i"},
    ]
    assert kernel_order_violations(events) == 2
    assert kernel_order_violations([]) == 0


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------
def test_generate_trial_is_pure():
    labels = interesting_labels("cve-2018-5092", "legacy-chrome", 0)
    a = generate_trial("cve-2018-5092", "legacy-chrome", 0, 3, "mixed", labels)
    b = generate_trial("cve-2018-5092", "legacy-chrome", 0, 3, "mixed", labels)
    assert a == b
    other = generate_trial("cve-2018-5092", "legacy-chrome", 0, 4, "mixed", labels)
    assert a != other


def test_interesting_labels_skips_wake_and_fault_labels():
    labels = interesting_labels("cve-2018-5092", "legacy-chrome", 0)
    assert labels  # the scenario uses workers + network: targets exist
    assert not any(exempt_label(lbl) for lbl in labels)


def test_run_fuzz_cell_finds_witnesses():
    payload = run_fuzz_cell("cve-2018-5092", "legacy-chrome", 0, 0, 3)
    assert payload["trials"] == 3
    assert payload["witnesses"]
    assert json.loads(json.dumps(payload)) == payload


def test_run_campaign_aggregates_shards():
    report = run_campaign(budget=4, shard_size=2, cache=None)
    assert report["trials"] == 4
    assert report["computed_shards"] == 2
    assert report["errors"] == []
    assert len(report["witnesses"]) >= 1
    assert report["order_violations"] == 0


def test_run_campaign_rejects_bad_budget():
    with pytest.raises(ValueError):
        run_campaign(budget=0)


# ----------------------------------------------------------------------
# minimization + replay
# ----------------------------------------------------------------------
def test_ddmin_finds_minimal_subset():
    atoms = [("a", i) for i in range(8)]
    needed = {("a", 2), ("a", 5)}
    minimal, _tests = ddmin(atoms, lambda subset: needed <= set(subset))
    assert set(minimal) == needed


def test_ddmin_empty_when_nominal_fails():
    atoms = [("a", 0), ("a", 1)]
    minimal, tests = ddmin(atoms, lambda subset: True)
    assert minimal == []
    assert tests == 1


def test_witness_atoms_and_build_specs():
    witness = {
        "perturb": {
            "strategy": "targeted",
            "rules": [
                {"match": "net:", "delay_ns": ms(1)},
                {"match": "msg:", "delay_ns": ms(2)},
            ],
        },
        "faults": {"aborts": [{"at_ns": ms(5), "path_contains": ""}]},
    }
    atoms = witness_atoms(witness)
    assert set(atoms) == {("rule", 0), ("rule", 1), ("aborts", 0)}
    perturb_spec, fault_spec = build_specs(witness, [("rule", 1)])
    assert perturb_spec["rules"] == [{"match": "msg:", "delay_ns": ms(2)}]
    assert fault_spec["aborts"] == []
    perturb_spec, fault_spec = build_specs(witness, [])
    assert perturb_spec == {"strategy": "none"}
    # monolithic strategies are a single atom
    assert witness_atoms({"perturb": {"strategy": "jitter", "seed": 1}}) == [
        ("perturb", 0)
    ]


def test_minimize_and_replay_witness(tmp_path):
    payload = run_fuzz_cell("cve-2018-5092", "legacy-chrome", 0, 0, 1)
    witness = payload["witnesses"][0]
    minimized = minimize_witness(witness)
    assert minimized["signature"] == signature(witness["verdict"])
    assert minimized["minimized"]["atoms_after"] <= minimized["minimized"]["atoms_before"]

    path = tmp_path / "witness.json"
    save_witness(minimized, str(path))
    loaded = load_witness(str(path))
    assert loaded == minimized
    # replay twice: identical verdicts, identical signature
    first = replay_witness(loaded)
    second = replay_witness(loaded)
    assert first == second
    assert signature(first) == minimized["signature"]
