"""O(1) live-event bookkeeping and the zero-alloc dispatch invariant.

The fast path replaced heap scans with maintained counters
(``Simulator.pending_events``, ``KernelEventQueue.__len__`` /
``pending_count``) and added an inline same-time wake continuation to the
event loop.  These tests pin the counters across every transition —
schedule/cancel/dispatch, push/confirm/cancel/pop/remove — and the
granularity contracts the inline continuation must preserve.
"""

import gc
import sys

import pytest

from repro.errors import SimulationError
from repro.kernel.kobjects import KernelEvent, KernelEventQueue
from repro.runtime.eventloop import EventLoop
from repro.runtime.simulator import Simulator
from repro.runtime.task import TaskSource


def _noop():
    pass


# ----------------------------------------------------------------------
# Simulator.pending_events
# ----------------------------------------------------------------------

class TestSimulatorPendingEvents:
    def test_schedule_increments(self):
        sim = Simulator()
        assert sim.pending_events == 0
        calls = [sim.schedule(i * 10, _noop) for i in range(5)]
        assert sim.pending_events == 5
        assert all(not c.cancelled for c in calls)

    def test_out_of_order_schedules_counted(self):
        sim = Simulator()
        sim.schedule(100, _noop)
        sim.schedule(50, _noop)  # heap lane
        sim.schedule(200, _noop)  # fifo lane
        assert sim.pending_events == 3

    def test_cancel_decrements_once(self):
        sim = Simulator()
        call = sim.schedule(10, _noop)
        sim.schedule(20, _noop)
        call.cancel()
        assert sim.pending_events == 1
        call.cancel()  # idempotent: must not double-decrement
        assert sim.pending_events == 1

    def test_dispatch_decrements(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i * 10, _noop)
        sim.step()
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_after_dispatch_is_noop(self):
        sim = Simulator()
        call = sim.schedule(0, _noop)
        sim.schedule(10, _noop)
        sim.run(until=5)
        assert sim.pending_events == 1
        call.cancel()  # already dispatched; must not touch the count
        assert sim.pending_events == 1

    def test_interleaved_schedule_cancel_dispatch(self):
        sim = Simulator()
        survivors = []

        def spawn():
            keep = sim.schedule(sim.dispatch_time + 10, _noop)
            victim = sim.schedule(sim.dispatch_time + 20, _noop)
            victim.cancel()
            survivors.append(keep)

        sim.schedule(0, spawn)
        sim.run(until=5)
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_matches_naive_scan(self):
        sim = Simulator()
        calls = [sim.schedule((i * 7) % 50, _noop) for i in range(20)]
        for call in calls[::3]:
            call.cancel()
        naive = sum(1 for c in calls if not c.cancelled)
        assert sim.pending_events == naive


# ----------------------------------------------------------------------
# KernelEventQueue len / pending_count
# ----------------------------------------------------------------------

def _kevent(kind="timeout"):
    return KernelEvent(kind, 0, {"default": _noop})


class TestKernelQueueCounts:
    def test_push_confirm_counts(self):
        queue = KernelEventQueue()
        a, b = _kevent(), _kevent()
        queue.push(a)
        queue.push(b)
        assert len(queue) == 2
        assert queue.pending_count == 2
        b.confirm()
        assert len(queue) == 2
        assert queue.pending_count == 1

    def test_cancel_pending_and_ready(self):
        queue = KernelEventQueue()
        a, b = _kevent(), _kevent()
        queue.push(a)
        queue.push(b)
        b.confirm()
        a.cancel()  # cancelled while PENDING
        assert len(queue) == 1
        assert queue.pending_count == 0
        b.cancel()  # cancelled while READY
        assert len(queue) == 0
        assert queue.pending_count == 0

    def test_cancel_idempotent(self):
        queue = KernelEventQueue()
        a = _kevent()
        queue.push(a)
        a.cancel()
        a.cancel()
        assert len(queue) == 0
        assert queue.pending_count == 0

    def test_pop_and_remove_forget(self):
        queue = KernelEventQueue()
        events = [_kevent() for _ in range(4)]
        for event in events:
            event.confirm()
            queue.push(event)
        popped = queue.pop()
        assert popped is events[0]
        assert len(queue) == 3
        queue.remove(events[1])
        assert len(queue) == 2
        queue.remove_by_id(events[2].id)
        assert len(queue) == 1
        # a late cancel on a removed event must not corrupt the counters
        events[1].cancel()
        assert len(queue) == 1
        assert queue.pending_count == 0

    def test_counts_match_scan_after_mixed_transitions(self):
        queue = KernelEventQueue()
        events = [_kevent() for _ in range(10)]
        for event in events:
            queue.push(event)
        for event in events[::2]:
            event.confirm()
        for event in events[1:6:2]:
            event.cancel()
        live = [e for e in events if e.status in ("pending", "ready")]
        pending = [e for e in events if e.status == "pending"]
        assert len(queue) == len(live)
        assert queue.pending_count == len(pending)


# ----------------------------------------------------------------------
# zero-alloc dispatch (disabled tracer)
# ----------------------------------------------------------------------

def test_untraced_dispatch_allocates_nothing_net():
    """Draining pre-scheduled noops must not allocate on the hot path.

    The drain frees the queue entries it pops, so the block delta over
    the whole run is at most a small constant — never O(events).
    """
    sim = Simulator()
    for i in range(10_000):
        sim.schedule(i * 1_000, _noop)
    gc.collect()
    before = sys.getallocatedblocks()
    sim.run()
    delta = sys.getallocatedblocks() - before
    assert sim.events_processed == 10_000
    assert delta < 100, f"hot loop allocated {delta} net blocks"


# ----------------------------------------------------------------------
# inline same-time wake continuation
# ----------------------------------------------------------------------

class TestInlineWakeContinuation:
    def test_same_time_tasks_all_run_in_order(self):
        sim = Simulator()
        loop = EventLoop(sim, "main", task_dispatch_cost=0)
        order = []
        for i in range(50):
            loop.post(order.append, i, source=TaskSource.SCRIPT)
        sim.run()
        assert order == list(range(50))
        assert loop.tasks_run == 50

    def test_events_processed_matches_one_wake_per_task(self):
        """Inline dispatches replicate the wake bookkeeping: the observable
        counter equals what one-scheduled-wake-per-task would produce."""
        sim = Simulator()
        loop = EventLoop(sim, "main", task_dispatch_cost=0)
        for i in range(50):
            loop.post(_noop, source=TaskSource.SCRIPT)
        sim.run()
        assert sim.events_processed == 50

    def test_run_until_keeps_per_event_granularity(self):
        """A predicate turning true between two same-time tasks must stop
        the run before the second one (inline batching is off here)."""
        sim = Simulator()
        loop = EventLoop(sim, "main", task_dispatch_cost=0)
        ran = []
        loop.post(ran.append, "first", source=TaskSource.SCRIPT)
        loop.post(ran.append, "second", source=TaskSource.SCRIPT)
        sim.run_until(lambda: bool(ran))
        assert ran == ["first"]
        sim.run()
        assert ran == ["first", "second"]

    def test_runaway_same_time_chain_hits_backstop(self):
        """A task that re-posts itself at the same virtual time must still
        trip max_events even though most dispatches run inline."""
        sim = Simulator()
        loop = EventLoop(sim, "main", task_dispatch_cost=0)

        def again():
            loop.post(again, source=TaskSource.SCRIPT)

        loop.post(again, source=TaskSource.SCRIPT)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_events=2_000)

    def test_tasks_posted_mid_batch_keep_fifo_order(self):
        sim = Simulator()
        loop = EventLoop(sim, "main", task_dispatch_cost=0)
        order = []

        def first():
            order.append("first")
            loop.post(lambda: order.append("late"), source=TaskSource.SCRIPT)

        loop.post(first, source=TaskSource.SCRIPT)
        loop.post(lambda: order.append("second"), source=TaskSource.SCRIPT)
        sim.run()
        assert order == ["first", "second", "late"]
