"""Unit tests for the kernel dispatcher: ordering, pacing, blocking."""

import pytest

from repro.kernel.policies.deterministic import DeterministicSchedulingPolicy
from repro.kernel.policy import CompositePolicy, SchedulingGrid
from repro.kernel.space import KernelSpace
from repro.runtime.eventloop import EventLoop
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator


@pytest.fixture
def kspace():
    sim = Simulator()
    loop = EventLoop(sim, "ktest", task_dispatch_cost=0)
    policy = CompositePolicy([DeterministicSchedulingPolicy()])
    return KernelSpace(loop, policy, SchedulingGrid(), label="test")


def test_dispatch_order_follows_predicted_time(kspace):
    order = []
    early = kspace.scheduler.register(
        "timeout", {"default": lambda: order.append("early")}, hint=ms(1)
    )
    late = kspace.scheduler.register("raf", {"default": lambda: order.append("late")})
    # confirm in the "wrong" order: late first
    kspace.scheduler.confirm(late)
    kspace.scheduler.confirm(early)
    kspace.loop.sim.run()
    assert order == ["early", "late"]
    assert early.predicted_time < late.predicted_time


def test_pending_head_blocks_later_events(kspace):
    """Paper §III-D3: 'if pending, the dispatcher will wait'."""
    order = []
    head = kspace.scheduler.register(
        "timeout", {"default": lambda: order.append("head")}, hint=ms(1)
    )
    tail = kspace.scheduler.register(
        "timeout", {"default": lambda: order.append("tail")}, hint=ms(2)
    )
    kspace.scheduler.confirm(tail)
    # real time passes; tail is confirmed but must NOT run before head
    kspace.loop.sim.schedule(ms(50), lambda: kspace.scheduler.confirm(head))
    kspace.loop.sim.run()
    assert order == ["head", "tail"]


def test_cancelled_head_is_discarded(kspace):
    order = []
    head = kspace.scheduler.register(
        "timeout", {"default": lambda: order.append("head")}, hint=ms(1)
    )
    tail = kspace.scheduler.register(
        "timeout", {"default": lambda: order.append("tail")}, hint=ms(2)
    )
    kspace.scheduler.confirm(tail)
    kspace.scheduler.cancel(head)
    kspace.loop.sim.run()
    assert order == ["tail"]


def test_pacing_holds_back_early_confirmations(kspace):
    """An event confirmed instantly still dispatches near its slot."""
    times = {}
    event = kspace.scheduler.register(
        "timeout", {"default": lambda: times.__setitem__("at", kspace.loop.sim.now)},
        hint=ms(8),
    )
    kspace.scheduler.confirm(event)  # confirmed at real t=0
    kspace.loop.sim.run()
    assert times["at"] >= ms(8)


def test_late_confirmation_dispatches_immediately_and_slips_anchor(kspace):
    times = {}
    event = kspace.scheduler.register(
        "timeout", {"default": lambda: times.__setitem__("first", kspace.loop.sim.now)},
        hint=ms(1),
    )
    kspace.loop.sim.schedule(ms(40), lambda: kspace.scheduler.confirm(event))
    kspace.loop.sim.run()
    assert ms(40) <= times["first"] < ms(41)
    # after the slip, a next event with a 1ms-later slot paces ~1ms later
    follow = kspace.scheduler.register(
        "timeout", {"default": lambda: times.__setitem__("second", kspace.loop.sim.now)},
        hint=ms(1),
    )
    kspace.scheduler.confirm(follow)
    kspace.loop.sim.run()
    assert times["second"] - times["first"] <= ms(3)


def test_dispatch_advances_kernel_clock_to_slot(kspace):
    slots = {}
    event = kspace.scheduler.register(
        "timeout", {"default": lambda: slots.__setitem__("clock", kspace.clock.now)},
        hint=ms(5),
    )
    kspace.scheduler.confirm(event)
    kspace.loop.sim.run()
    assert slots["clock"] >= event.predicted_time


def test_on_dispatch_hook_replaces_callback(kspace):
    seen = []
    event = kspace.scheduler.register("timeout", {"default": lambda: seen.append("cb")}, hint=0)
    event.on_dispatch = lambda ev: seen.append(("hook", ev.kind))
    kspace.scheduler.confirm(event)
    kspace.loop.sim.run()
    assert seen == [("hook", "timeout")]


def test_this_binding(kspace):
    seen = []
    target = object()
    event = kspace.scheduler.register(
        "dom", {"default": lambda this, value: seen.append((this, value))}
    )
    kspace.scheduler.confirm(event, args=(42,), this=target)
    kspace.loop.sim.run()
    assert seen == [(target, 42)]


def test_dispatched_count(kspace):
    for i in range(3):
        event = kspace.scheduler.register("timeout", {"default": lambda: None}, hint=0)
        kspace.scheduler.confirm(event)
    kspace.loop.sim.run()
    assert kspace.dispatcher.dispatched_count == 3
