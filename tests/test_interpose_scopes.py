"""Unit tests for interposition machinery and scopes."""

import pytest

from repro.errors import SecurityError
from repro.runtime.interpose import Interposable
from repro.runtime.origin import parse_url
from repro.runtime.scopes import BaseScope, WorkerScope
from repro.runtime.eventloop import EventLoop
from repro.runtime.simulator import ExecutionFrame, Simulator


class Thing(Interposable):
    def __init__(self):
        super().__init__()
        self.value = 1


def test_plain_attributes_assignable():
    thing = Thing()
    thing.value = 2
    assert thing.value == 2


def test_setter_trap_intercepts_assignment():
    thing = Thing()
    seen = []
    thing.define_setter_trap("value", seen.append)
    thing.value = 42
    assert seen == [42]
    assert thing.value == 1  # trap did not store


def test_trap_can_store_via_set_raw():
    thing = Thing()
    thing.define_setter_trap("value", lambda v: thing.set_raw("value", v * 2))
    thing.value = 21
    assert thing.value == 42


def test_sealed_attribute_rejects_assignment():
    thing = Thing()
    thing.seal_attribute("value")
    with pytest.raises(SecurityError):
        thing.value = 2
    assert thing.sealed("value")


def test_sealed_trap_still_runs_but_cannot_be_replaced():
    thing = Thing()
    seen = []
    thing.define_setter_trap("value", seen.append)
    thing.seal_attribute("value")
    thing.value = 5  # assignment still goes through the trap
    assert seen == [5]
    with pytest.raises(SecurityError):
        thing.define_setter_trap("value", lambda v: None)


def test_set_raw_bypasses_seal():
    thing = Thing()
    thing.seal_attribute("value")
    thing.set_raw("value", 99)
    assert thing.value == 99


def test_private_attributes_never_trapped():
    thing = Thing()
    thing._internal = 5  # no trap machinery for underscore names
    assert thing._internal == 5


# ----------------------------------------------------------------------
# scopes
# ----------------------------------------------------------------------

@pytest.fixture
def scope():
    sim = Simulator()
    loop = EventLoop(sim, "scope-test", task_dispatch_cost=0)
    url = parse_url("https://app.example/")
    return BaseScope(loop, url.origin, url)


def test_scope_has_timer_apis(scope):
    fired = []
    scope.setTimeout(lambda: fired.append(1), 1)
    scope.sim.run()
    assert fired == [1]


def test_scope_apis_are_redefinable(scope):
    # a page may legitimately keep a backup copy and redefine (paper §III-B)
    native = scope.setTimeout
    calls = []

    def wrapped(cb, delay=0, *args):
        calls.append(delay)
        return native(cb, delay, *args)

    scope.setTimeout = wrapped
    scope.setTimeout(lambda: None, 7)
    assert calls == [7]


def test_busy_work_consumes_scaled_time(scope):
    frame = ExecutionFrame(0, "t")
    scope.sim.push_frame(frame)
    scope.busy_work(2.0)
    assert frame.elapsed == 2_000_000
    scope.js_cost_scale = 10.0
    scope.busy_work(2.0)
    assert frame.elapsed == 22_000_000
    scope.sim.pop_frame()


def test_scope_location(scope):
    assert scope.location == "https://app.example/"


def test_console_collects_lines(scope):
    scope.console.log("a", 1)
    assert scope.console.lines == ["a 1"]


def test_worker_scope_onmessage_trap_is_native_by_default():
    sim = Simulator()
    loop = EventLoop(sim, "w", task_dispatch_cost=0)
    url = parse_url("https://app.example/worker.js")
    ws = WorkerScope(loop, url.origin, url)

    def handler(event):
        return None

    ws.onmessage = handler
    assert ws.onmessage is handler
