"""Unit tests for statistics, distinguishability and table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    best_threshold_accuracy,
    cdf_points,
    cosine_similarity,
    distinguishable,
    held_out_accuracy,
    mean,
    median,
    percentile,
    render_cdf_summary,
    render_matrix,
    render_series,
    render_table,
    stdev,
    summarize,
    welch_t,
)


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------

def test_mean_median_stdev():
    values = [1.0, 2.0, 3.0, 4.0]
    assert mean(values) == 2.5
    assert median(values) == 2.5
    assert median([1, 5, 9]) == 5
    assert stdev(values) == pytest.approx(1.29099, abs=1e-4)
    assert stdev([7.0]) == 0.0


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        median([])


def test_percentile():
    values = list(range(101))
    assert percentile(values, 0) == 0
    assert percentile(values, 50) == 50
    assert percentile(values, 100) == 100
    assert percentile([10.0], 73) == 10.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_cdf_points():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]


def test_cosine_similarity_identical_and_disjoint():
    assert cosine_similarity("<a><b>", "<a><b>") == pytest.approx(1.0)
    assert cosine_similarity("<a>", "<b>") == pytest.approx(0.0)
    middling = cosine_similarity("<a><b><c>", "<a><b><d>")
    assert 0.4 < middling < 0.9


def test_summarize_bundle():
    bundle = summarize([1.0, 2.0, 3.0])
    assert bundle["mean"] == 2.0
    assert bundle["n"] == 3.0
    assert bundle["min"] == 1.0 and bundle["max"] == 3.0


# ----------------------------------------------------------------------
# distinguishability
# ----------------------------------------------------------------------

def test_identical_samples_are_indistinguishable():
    assert best_threshold_accuracy([5.0] * 8, [5.0] * 8) == 0.5
    assert not distinguishable([5.0] * 8, [5.0] * 8)
    assert welch_t([5.0] * 8, [5.0] * 8) == 0.0


def test_separated_samples_distinguishable():
    a = [1.0, 1.1, 0.9, 1.05] * 3
    b = [9.0, 9.1, 8.9, 9.05] * 3
    assert best_threshold_accuracy(a, b) == 1.0
    assert held_out_accuracy(a, b) == 1.0
    assert distinguishable(a, b)


def test_constant_but_different_samples_distinguishable():
    assert welch_t([3.0] * 6, [4.0] * 6) == float("inf")
    assert distinguishable([3.0] * 6, [4.0] * 6)


def test_pure_noise_not_distinguishable():
    import random

    rng = random.Random(3)
    a = [rng.gauss(10, 3) for _ in range(12)]
    b = [rng.gauss(10, 3) for _ in range(12)]
    assert not distinguishable(a, b)


def test_small_shift_found_by_averaging_adversary():
    import random

    rng = random.Random(4)
    a = [rng.gauss(10.0, 0.5) for _ in range(12)]
    b = [rng.gauss(11.5, 0.5) for _ in range(12)]
    assert distinguishable(a, b)


def test_best_threshold_requires_both_sides():
    with pytest.raises(ValueError):
        best_threshold_accuracy([], [1.0])


@given(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2, max_size=20),
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2, max_size=20),
)
def test_accuracy_bounds(a, b):
    accuracy = best_threshold_accuracy(a, b)
    assert 0.5 <= accuracy <= 1.0
    assert 0.0 <= held_out_accuracy(a, b) <= 1.0


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def test_render_matrix_marks_disagreements():
    matrix = {"atk": {"d1": True, "d2": False}}
    expected = {"atk": {"d1": True, "d2": True}}
    text = render_matrix(matrix, ["d1", "d2"], expected=expected)
    assert "+" in text and "x!" in text


def test_render_table_alignment():
    text = render_table(["name", "value"], [["row", 1.234]], title="T")
    assert "T" in text
    assert "1.23" in text


def test_render_series_and_cdf():
    series_text = render_series({"chrome": [(2.0, 4.0)]}, title="fig")
    assert "(2, 4.00)" in series_text
    cdf_text = render_cdf_summary({"cfg": [1.0, 2.0, 3.0]})
    assert "p50" in cdf_text
