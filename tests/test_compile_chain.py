"""The scenario pre-compiler must be observably identical to interpretation.

``CompiledTimerChain`` batch-executes statically-known setTimeout chains
without re-entering the generic simulator loop.  Its contract (DESIGN
§17): every observable — virtual times, sequence numbers, event counts,
task-id consumption, timer ids, dispatch labels, busy accounting, trace
exports — matches the interpreted run byte for byte, and anything
data-dependent (payloads that post work, external events interleaving,
single-step execution) falls back to the generic machinery with no
observable difference.
"""

import hashlib
import json
import os

import pytest

from repro.errors import SimulationError
from repro.runtime.compile import (
    ChainSpecError,
    ChainStep,
    TimerChainSpec,
    compile_chain,
)
from repro.runtime.eventloop import EventLoop
from repro.runtime.simtime import ms
from repro.runtime.simulator import Simulator
from repro.runtime.task import Microtask, Task
from repro.runtime.timers import TimerRegistry
from repro.trace import Tracer, capture
from repro.trace.export import dump_chrome_trace, format_timeline

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def build(spec_factory):
    sim = Simulator()
    loop = EventLoop(sim, "main")
    registry = TimerRegistry(loop)
    chain = compile_chain(spec_factory(sim, loop, registry), registry)
    return sim, loop, registry, chain


def run_chain(spec_factory, compiled):
    sim, loop, registry, chain = build(spec_factory)
    probe_before = Task(lambda: None).id
    (chain.start if compiled else chain.start_interpreted)()
    sim.run()
    task_ids_consumed = Task(lambda: None).id - probe_before - 1
    return {
        "time": sim._time,
        "seq": sim._seq,
        "events": sim.events_processed,
        "tasks_run": loop.tasks_run,
        "busy_until": loop.busy_until,
        "live": sim._live,
        "labels": list(sim._recent_labels),
        "entries": dict(registry._entries),
        "next_timer_id": next(registry._ids),
        "task_ids_consumed": task_ids_consumed,
        "finished": chain.finished,
    }, chain


def assert_equivalent(spec_factory, expect_bailouts=0):
    interpreted, _ = run_chain(spec_factory, compiled=False)
    compiled, chain = run_chain(spec_factory, compiled=True)
    assert compiled == interpreted
    assert chain.mode == "compiled"
    assert chain.bailouts == expect_bailouts
    return chain


# ----------------------------------------------------------------------
# batch execution == interpretation, observable for observable
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory",
    [
        pytest.param(
            lambda sim, loop, reg: TimerChainSpec.uniform(
                50, delay_ms=1, cost=2_000, micros=2, micro_cost=400
            ),
            id="uniform-cost-micros",
        ),
        pytest.param(
            lambda sim, loop, reg: TimerChainSpec.uniform(40, delay_ms=0, cost=100),
            id="zero-delay-nesting-clamp",
        ),
        pytest.param(
            lambda sim, loop, reg: TimerChainSpec.uniform(25),
            id="bare-links",
        ),
        pytest.param(
            lambda sim, loop, reg: TimerChainSpec.from_delays(
                [0, 3, 1, 7, 0, 2] * 6, cost=500
            ),
            id="varied-delays",
        ),
        pytest.param(
            lambda sim, loop, reg: TimerChainSpec(
                [ChainStep(1, cost=10_000), ChainStep(0, micros=5, micro_cost=50),
                 ChainStep(9, cost=1), ChainStep(2)]
            ),
            id="heterogeneous-steps",
        ),
    ],
)
def test_batch_execution_matches_interpreted(factory):
    chain = assert_equivalent(factory)
    assert chain.links_batched == len(chain._steps)
    assert chain.links_interpreted == 0


def test_payload_clock_reads_are_identical():
    """A payload reading sim.now mid-link sees the same timestamps (the
    batch loop flushes its cost accumulator around callbacks)."""
    readings = {}

    def factory(sim, loop, reg):
        log = readings.setdefault(id(sim), [])

        def cb():
            log.append(sim.now)

        return TimerChainSpec.uniform(
            30, delay_ms=1, callback=cb, cost=1_500, micros=1, micro_cost=300
        )

    interpreted, _ = run_chain(factory, compiled=False)
    compiled, _ = run_chain(factory, compiled=True)
    assert compiled == interpreted
    logs = list(readings.values())
    assert logs[0] == logs[1] and len(logs[0]) == 30


def test_payload_consuming_cost_is_identical():
    def factory(sim, loop, reg):
        return TimerChainSpec.uniform(
            30, delay_ms=1, callback=lambda: sim.consume(777), cost=100,
            micros=3, micro_cost=50,
        )

    assert_equivalent(factory)


def test_payload_posting_microtasks_is_identical():
    """Payload-queued promise reactions kill the allocation shortcut but
    drain in the same FIFO order with the same costs."""

    def factory(sim, loop, reg):
        def cb():
            loop.post_microtask(Microtask(lambda: sim.consume(99), (), 120))

        return TimerChainSpec.uniform(
            30, delay_ms=1, callback=cb, cost=500, micros=2, micro_cost=250
        )

    assert_equivalent(factory)


# ----------------------------------------------------------------------
# bailouts: data-dependent chains fall back to interpretation
# ----------------------------------------------------------------------
def test_payload_posting_tasks_bails_out_to_interpreted():
    """A payload that posts a task mid-chain demotes the rest of the
    chain to generic dispatch — with identical final state."""

    def factory(sim, loop, reg):
        counter = [0]

        def cb():
            counter[0] += 1
            if counter[0] % 7 == 0:
                loop.post(lambda: None, label="intruder")

        return TimerChainSpec.uniform(
            40, delay_ms=1, callback=cb, cost=1_000, micros=1, micro_cost=200
        )

    interpreted, _ = run_chain(factory, compiled=False)
    compiled, chain = run_chain(factory, compiled=True)
    assert compiled == interpreted
    assert chain.mode == "compiled"
    assert chain.bailouts == 1
    assert chain.links_batched >= 1
    assert chain.links_interpreted >= 1
    assert chain.links_batched + chain.links_interpreted == 40


def test_payload_arming_real_timers_bails_out():
    """Arming a real timer moves the sequence number (and shares the
    timer-id stream) — the guard must hand off, ids must stay in sync."""

    def factory(sim, loop, reg):
        counter = [0]

        def cb():
            counter[0] += 1
            if counter[0] == 11:
                reg.set_timeout(lambda: None, 5)

        return TimerChainSpec.uniform(30, delay_ms=1, callback=cb, cost=300)

    interpreted, _ = run_chain(factory, compiled=False)
    compiled, chain = run_chain(factory, compiled=True)
    assert compiled == interpreted
    assert chain.bailouts == 1


def test_preexisting_event_interleaves_identically():
    """An external simulator event due mid-chain must dispatch between
    links exactly as the interpreted schedule would."""

    def factory(sim, loop, reg):
        sim.schedule(ms(13), lambda: None, label="external")
        return TimerChainSpec.uniform(30, delay_ms=1, cost=800, micros=1, micro_cost=100)

    interpreted, _ = run_chain(factory, compiled=False)
    compiled, chain = run_chain(factory, compiled=True)
    assert compiled == interpreted
    assert chain.bailouts >= 1


# ----------------------------------------------------------------------
# degraded arming: non-pristine state never enters batch mode
# ----------------------------------------------------------------------
def test_busy_loop_arms_interpreted():
    sim = Simulator()
    loop = EventLoop(sim, "main")
    registry = TimerRegistry(loop)
    loop.post(lambda: None, label="queued-ahead")
    chain = compile_chain(TimerChainSpec.uniform(5, delay_ms=1), registry)
    chain.start()
    assert chain.mode == "interpreted"
    sim.run()
    assert chain.finished
    assert chain.links_interpreted == 5


def test_single_step_execution_degrades_to_generic_dispatch():
    """Under step() the inline-wake invariant doesn't hold; the batch
    entry must delegate to the real wake, still completing the chain."""
    sim = Simulator()
    loop = EventLoop(sim, "main")
    registry = TimerRegistry(loop)
    chain = compile_chain(
        TimerChainSpec.uniform(6, delay_ms=1, cost=100), registry
    )
    chain.start()
    assert chain.mode == "compiled"
    while sim.step():
        pass
    assert chain.finished
    assert chain.mode == "degraded"
    assert chain.links_interpreted == 6
    assert chain.links_batched == 0

    # and the observables match a fully interpreted run
    interpreted, _ = run_chain(
        lambda s, l, r: TimerChainSpec.uniform(6, delay_ms=1, cost=100), False
    )
    stepped = {
        "time": sim._time,
        "busy_until": loop.busy_until,
        "tasks_run": loop.tasks_run,
        "events": sim.events_processed,
    }
    assert stepped == {k: interpreted[k] for k in stepped}


def test_chain_cannot_start_twice():
    sim = Simulator()
    loop = EventLoop(sim, "main")
    registry = TimerRegistry(loop)
    chain = compile_chain(TimerChainSpec.uniform(3), registry)
    chain.start()
    with pytest.raises(SimulationError, match="already started"):
        chain.start()
    sim.run()
    assert chain.finished


# ----------------------------------------------------------------------
# traced runs: byte-identical exports, pinned golden
# ----------------------------------------------------------------------
def _traced_digests(compiled):
    tracer = Tracer()
    with capture(tracer):
        sim = Simulator()
        loop = EventLoop(sim, "main")
        registry = TimerRegistry(loop)
        chain = compile_chain(
            TimerChainSpec.uniform(
                40, delay_ms=1, cost=2_000, micros=2, micro_cost=400
            ),
            registry,
        )
        (chain.start if compiled else chain.start_interpreted)()
        sim.run()
    chrome = hashlib.sha256(dump_chrome_trace(tracer).encode()).hexdigest()
    timeline = hashlib.sha256(format_timeline(tracer).encode()).hexdigest()
    return len(tracer), chrome, timeline, chain


def test_traced_chain_matches_the_golden_digests():
    with open(os.path.join(GOLDEN_DIR, "trace_digests.json"), encoding="utf-8") as f:
        golden = json.load(f)["chain"]
    for compiled in (False, True):
        events, chrome, timeline, chain = _traced_digests(compiled)
        assert events == golden["events"]
        assert chrome == golden["chrome_sha256"]
        assert timeline == golden["timeline_sha256"]
        assert chain.finished
    # tracing diverts links through the real task machinery, so the
    # batch loop ran them all in traced flavour
    assert chain.mode == "compiled"
    assert chain.links_batched == 40


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "steps, fragment",
    [
        ([], "at least one step"),
        ([ChainStep(float("nan"))], "finite"),
        ([ChainStep(1, cost=-1)], "non-negative"),
        ([ChainStep(1, micros=-2)], "non-negative"),
        ([ChainStep(True)], "number"),
        ([object()], "expected ChainStep"),
    ],
)
def test_malformed_specs_fail_at_compile_time(steps, fragment):
    with pytest.raises(ChainSpecError, match=fragment):
        TimerChainSpec(steps)


def test_uniform_requires_positive_links():
    with pytest.raises(ChainSpecError, match="positive"):
        TimerChainSpec.uniform(0)
