"""Integration tests for kernel thread management."""

from repro.errors import SecurityError
from repro.kernel.threadmgr import KernelWorkerStub
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms


def kernel_instance(kernel_browser, kernel_page):
    return kernel_page.jskernel


def test_user_gets_a_stub_not_the_native_handle(kernel_browser, kernel_page):
    box = {}

    def script(scope):
        box["worker"] = scope.Worker(lambda ws: None)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(50))
    assert isinstance(box["worker"], KernelWorkerStub)


def test_kernel_thread_lifecycle_states(kernel_browser, kernel_page):
    box = {}

    def script(scope):
        box["worker"] = scope.Worker(lambda ws: ws.postMessage("up"))

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(100))
    kthread = kernel_page.jskernel.threads[0]
    assert kthread.status == "ready"  # user thread loaded
    box["worker"].terminate()
    assert kthread.status == "closed"
    assert not kthread.alive


def test_round_trip_through_kernel(kernel_browser, kernel_page):
    seen = []

    def script(scope):
        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage(event.data + 1)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)
        worker.postMessage(1)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(200))
    assert seen == [2]


def test_worker_scope_apis_are_kernel_wrapped(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        def worker_main(ws):
            t0 = ws.performance.now()
            ws.busy_work(40.0)
            ws.postMessage(ws.performance.now() - t0)

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.__setitem__("delta", event.data)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(300))
    assert seen["delta"] < 2.0  # worker clock is a kernel clock too


def test_termination_is_user_level_only(kernel_browser, kernel_page):
    """The lifecycle policy keeps the kernel worker alive."""
    box = {}

    def script(scope):
        worker = scope.Worker(lambda ws: None)
        worker.terminate()
        box["worker"] = worker

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(100))
    kthread = kernel_page.jskernel.threads[0]
    assert kthread.status == "closed"
    assert kthread.user_level_closed_only
    # the native agent underneath was never terminated
    agent = kernel_browser.workers[0]
    assert agent.state != "terminated"


def test_messages_to_closed_thread_are_dropped(kernel_browser, kernel_page):
    seen = []

    def script(scope):
        def worker_main(ws):
            ws.onmessage = lambda event: ws.postMessage("reply")

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.append(event.data)
        worker.terminate()
        worker.postMessage("into the void")

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(200))
    assert seen == []


def test_pending_fetch_handshake(kernel_browser, kernel_page):
    """Listing 4's pendingChildFetch/confirmFetch system messages."""
    kernel_browser.network.host_simple(
        parse_url("https://app.example/file"), 30_000
    )
    snapshots = {}

    def script(scope):
        def worker_main(ws):
            ws.fetch("/file").then(lambda r: ws.postMessage("done"))
            ws.postMessage("started")

        worker = scope.Worker(worker_main)

        def on_message(event):
            kthread = kernel_page.jskernel.threads[0]
            snapshots[event.data] = set(kthread.pending_fetches)

        worker.onmessage = on_message

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(500))
    assert len(snapshots["started"]) == 1  # pending while in flight
    assert snapshots["done"] == set()  # settled and cleared


def test_worker_xhr_blocked_by_origin_policy(kernel_browser, kernel_page):
    kernel_browser.network.host_simple(
        parse_url("https://victim.example/api"), 100, body="secret"
    )
    seen = {}

    def script(scope):
        def worker_main(ws):
            xhr = ws.XMLHttpRequest()
            xhr.open("GET", "https://victim.example/api")
            try:
                xhr.send()
                ws.postMessage("sent")
            except SecurityError as exc:
                ws.postMessage(f"blocked:{exc}")

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.__setitem__("result", event.data)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(300))
    assert seen["result"].startswith("blocked:")


def test_import_scripts_errors_sanitized(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        def worker_main(ws):
            try:
                ws.importScripts("https://victim.example/secret-lib.js")
            except Exception as exc:
                ws.postMessage(str(exc))

        worker = scope.Worker(worker_main)
        worker.onmessage = lambda event: seen.__setitem__("message", event.data)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(300))
    assert seen["message"] == "Script error."
    assert "victim" not in seen["message"]


def test_worker_error_events_sanitized(kernel_browser, kernel_page):
    seen = {}

    def script(scope):
        worker = scope.Worker("https://victim.example/w.js")
        worker.onerror = lambda event: seen.__setitem__("message", event.message)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(300))
    assert seen["message"] == "Script error."


def test_stub_onmessage_trap_is_sealed(kernel_browser, kernel_page):
    outcome = {}

    def script(scope):
        worker = scope.Worker(lambda ws: None)
        try:
            worker.define_setter_trap("onmessage", lambda fn: None)
        except SecurityError:
            outcome["blocked"] = True

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(100))
    assert outcome.get("blocked")


def test_transfer_neuter_policy_detaches_sender(kernel_browser, kernel_page):
    box = {}

    def script(scope):
        buffer = scope.ArrayBuffer(64)
        box["buffer"] = buffer

        def worker_main(ws):
            ws.onmessage = lambda event: None

        worker = scope.Worker(worker_main)
        worker.postMessage("take", transfer=[buffer])

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(200))
    assert box["buffer"].detached


def test_user_thread_source_travels_via_kernel_message(kernel_browser, kernel_page):
    """The bootstrap imports the user thread only after the kernel's
    load-user-thread system message arrives."""
    order = []

    def script(scope):
        def worker_main(ws):
            order.append("user-thread-ran")

        scope.Worker(worker_main)

    kernel_page.run_script(script)
    kernel_browser.run(until=ms(100))
    assert order == ["user-thread-ran"]
    assert kernel_page.jskernel.threads[0].worker_kspace is not None
