"""Unit tests for the seeded randomness service."""

from hypothesis import given, strategies as st

from repro.runtime.rng import RngService, hash_seed


def test_same_seed_same_stream():
    a = RngService(42).stream("network")
    b = RngService(42).stream("network")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent_of_request_order():
    svc1 = RngService(7)
    first_net = svc1.stream("network").random()
    svc2 = RngService(7)
    svc2.stream("fuzzyfox").random()  # extra draw on another stream
    assert svc2.stream("network").random() == first_net


def test_different_names_differ():
    svc = RngService(0)
    assert svc.stream("a").random() != svc.stream("b").random()


def test_stream_is_cached():
    svc = RngService(0)
    assert svc.stream("x") is svc.stream("x")


def test_fork_is_deterministic_and_distinct():
    svc = RngService(5)
    fork1 = svc.fork("trial-1")
    fork2 = RngService(5).fork("trial-1")
    assert fork1.stream("s").random() == fork2.stream("s").random()
    assert svc.fork("trial-1").seed != svc.fork("trial-2").seed


def test_hash_seed_is_stable():
    # must be stable across processes/runs (FNV-1a, not builtin hash)
    assert hash_seed(0, "network") == hash_seed(0, "network")
    assert hash_seed(0, "network") != hash_seed(1, "network")
    assert hash_seed(0, "a") != hash_seed(0, "b")


@given(st.integers(), st.text(max_size=40))
def test_hash_seed_in_64_bit_range(seed, name):
    value = hash_seed(seed, name)
    assert 0 <= value < 2**64
