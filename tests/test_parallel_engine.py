"""Tests for the parallel experiment engine and the result cache.

The contract under test: every experiment cell is a pure deterministic
function, so (a) a sharded run is byte-identical to a serial one, (b) a
cached result is byte-identical to a fresh computation, and (c) one
poisoned cell reports per-cell instead of killing the pool.
"""

import json

import pytest

from repro.harness import (
    Cell,
    ExperimentEngine,
    ResultCache,
    determinism_matrix,
    figure2_script_parsing,
    run_table1,
    table2_svg_loopscan,
)
from repro.harness.perf import figure3_cdf
from repro.trace import Tracer, capture

# A small but heterogeneous Table I slice: one CVE row, one timing row.
ATTACKS = ["cve-2018-5092", "css-animation"]
DEFENSES = ["legacy-chrome", "jskernel"]


def as_json(result):
    return json.dumps(
        {"matrix": result.matrix, "details": result.details, "metrics": result.metrics},
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# parallel == serial, byte for byte
# ----------------------------------------------------------------------
def test_parallel_table1_is_byte_identical_to_serial():
    serial = run_table1(attacks=ATTACKS, defenses=DEFENSES)
    sharded = run_table1(attacks=ATTACKS, defenses=DEFENSES, parallel=2)
    assert as_json(sharded) == as_json(serial)
    assert sharded.errors == [] and serial.errors == []


def test_parallel_table1_merges_worker_metrics_into_ambient_tracer():
    serial_tracer, parallel_tracer = Tracer(), Tracer()
    with capture(serial_tracer):
        serial = run_table1(attacks=ATTACKS, defenses=DEFENSES)
    with capture(parallel_tracer):
        sharded = run_table1(attacks=ATTACKS, defenses=DEFENSES, parallel=2)
    assert serial.metrics is not None
    assert sharded.metrics == serial.metrics
    assert parallel_tracer.metrics.snapshot() == serial_tracer.metrics.snapshot()


def test_parallel_determinism_matrix_matches_serial():
    serial = determinism_matrix(["cache-attack"], DEFENSES, seeds=(0, 1))
    sharded = determinism_matrix(["cache-attack"], DEFENSES, seeds=(0, 1), parallel=2)
    assert sharded == serial
    assert serial["cache-attack"]["jskernel"]["deterministic"]
    assert serial["cache-attack"]["legacy-chrome"]["divergence"] > 0


def test_parallel_perf_sweeps_match_serial():
    sizes = [1 * 1024 * 1024, 4 * 1024 * 1024]
    assert figure2_script_parsing(sizes=sizes, defenses=DEFENSES) == figure2_script_parsing(
        sizes=sizes, defenses=DEFENSES, parallel=2
    )
    assert table2_svg_loopscan(defenses=DEFENSES, runs=2) == table2_svg_loopscan(
        defenses=DEFENSES, runs=2, parallel=2
    )
    assert figure3_cdf(site_count=3, visits=1, configs=DEFENSES) == figure3_cdf(
        site_count=3, visits=1, configs=DEFENSES, parallel=2
    )


# ----------------------------------------------------------------------
# the result cache
# ----------------------------------------------------------------------
def test_warm_cache_rerun_recomputes_zero_cells(tmp_path):
    cold_cache = ResultCache(tmp_path)
    cold = run_table1(attacks=ATTACKS, defenses=DEFENSES, cache=cold_cache)
    assert cold.computed_cells == len(ATTACKS) * len(DEFENSES)
    assert cold.cached_cells == 0
    assert cold_cache.stores == cold.computed_cells

    warm_cache = ResultCache(tmp_path)
    warm = run_table1(attacks=ATTACKS, defenses=DEFENSES, cache=warm_cache)
    assert warm.computed_cells == 0
    assert warm.cached_cells == len(ATTACKS) * len(DEFENSES)
    assert warm_cache.hits == warm.cached_cells
    assert as_json(warm) == as_json(cold)


def test_cache_invalidated_by_seed_change(tmp_path):
    run_table1(attacks=ATTACKS, defenses=DEFENSES, seed=0, cache=ResultCache(tmp_path))
    other_seed = run_table1(
        attacks=ATTACKS, defenses=DEFENSES, seed=1, cache=ResultCache(tmp_path)
    )
    assert other_seed.computed_cells == len(ATTACKS) * len(DEFENSES)
    assert other_seed.cached_cells == 0


def test_cache_invalidated_by_code_fingerprint_change(tmp_path, monkeypatch):
    run_table1(attacks=ATTACKS, defenses=DEFENSES, cache=ResultCache(tmp_path))
    monkeypatch.setattr("repro.harness.cache.code_fingerprint", lambda: "deadbeef")
    changed = run_table1(attacks=ATTACKS, defenses=DEFENSES, cache=ResultCache(tmp_path))
    assert changed.computed_cells == len(ATTACKS) * len(DEFENSES)
    assert changed.cached_cells == 0


def test_corrupt_cache_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    run_table1(attacks=ATTACKS[:1], defenses=DEFENSES[:1], cache=cache)
    for path in tmp_path.rglob("*.json"):
        path.write_text("{not json")
    reread = ResultCache(tmp_path)
    result = run_table1(attacks=ATTACKS[:1], defenses=DEFENSES[:1], cache=reread)
    assert result.computed_cells == 1 and result.cached_cells == 0
    assert reread.misses == 1


def test_audit_shards_are_cached_and_byte_identical(tmp_path):
    cold = determinism_matrix(
        ["cache-attack"], ["jskernel"], seeds=(0, 1), cache=ResultCache(tmp_path)
    )
    warm_cache = ResultCache(tmp_path)
    warm = determinism_matrix(
        ["cache-attack"], ["jskernel"], seeds=(0, 1), cache=warm_cache
    )
    assert warm_cache.hits == 2  # one shard per seed
    assert json.dumps(warm, sort_keys=True) == json.dumps(cold, sort_keys=True)


# ----------------------------------------------------------------------
# per-cell error capture
# ----------------------------------------------------------------------
def test_poisoned_cell_reports_without_killing_the_pool():
    cells = [
        Cell("table1", {"attack": "cve-2018-5092", "defense": "jskernel", "seed": 0}),
        Cell("table1", {"attack": "no-such-attack", "defense": "jskernel", "seed": 0}),
        Cell("table1", {"attack": "cve-2018-5092", "defense": "legacy-chrome", "seed": 0}),
    ]
    engine = ExperimentEngine(workers=2)
    results = engine.run(cells)
    assert [r.ok for r in results] == [True, False, True]
    assert "no-such-attack" in results[1].error
    assert engine.errors == 1 and engine.computed == 3


def test_unknown_cell_kind_is_a_per_cell_error():
    results = ExperimentEngine().run([Cell("definitely-not-registered", {})])
    assert not results[0].ok
    assert "unknown cell kind" in results[0].error


def test_poisoned_table1_cell_surfaces_in_result_errors():
    result = run_table1(attacks=["no-such-attack", "cve-2018-5092"], defenses=["jskernel"])
    assert len(result.errors) == 1 and "no-such-attack" in result.errors[0]
    assert result.details["no-such-attack"]["jskernel"].startswith("error:")
    # the poisoned row can never read as defended
    assert result.matrix["no-such-attack"]["jskernel"] is False
    # the healthy cell still ran
    assert result.matrix["cve-2018-5092"]["jskernel"] is True


def test_failed_cells_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    run_table1(attacks=["no-such-attack"], defenses=["jskernel"], cache=cache)
    assert cache.stores == 0
    retry = run_table1(attacks=["no-such-attack"], defenses=["jskernel"],
                       cache=ResultCache(tmp_path))
    assert retry.computed_cells == 1  # still recomputed, not served from cache


# ----------------------------------------------------------------------
# harness correctness fixes riding along (ISSUE satellites)
# ----------------------------------------------------------------------
def test_agreement_skips_cells_outside_the_paper_matrix():
    # jskernel-nocve is an ablation defense and sab-timer an extension
    # attack; neither appears in the reconstructed Table I, and both used
    # to crash agreement()/disagreements() with a KeyError
    result = run_table1(
        attacks=["cve-2018-5092", "sab-timer"],
        defenses=["legacy-chrome", "jskernel-nocve"],
    )
    assert result.agreement() == 1.0  # only the comparable cell counts
    assert result.disagreements() == []


def test_agreement_on_fully_non_comparable_run_is_vacuously_clean():
    result = run_table1(attacks=["sab-timer"], defenses=["jskernel-nodet"])
    assert result.agreement() == 1.0
    assert result.disagreements() == []


def test_table2_no_longer_pollutes_the_table_with_a_metrics_row():
    tracer = Tracer()
    with capture(tracer):
        table = table2_svg_loopscan(defenses=DEFENSES, runs=1)
    assert set(table) == set(DEFENSES)  # defense rows only, even when traced
    # the metrics still travel out-of-band via the ambient tracer
    assert tracer.metrics.snapshot()["counters"]


def test_bench_scale_reads_env_lazily(monkeypatch):
    import importlib.util
    import pathlib

    conftest_path = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"
    spec = importlib.util.spec_from_file_location("bench_conftest", conftest_path)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    spec.loader.exec_module(module)
    assert module.scale("medium", "full") == "medium"
    # flipping the env var AFTER import must take effect (it used to be
    # frozen into a module-level FULL constant at import time)
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert module.scale("medium", "full") == "full"
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", "3")
    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", "/tmp/bench-cache")
    assert module.engine_kwargs() == {"parallel": 3, "cache": "/tmp/bench-cache"}
    monkeypatch.setenv("REPRO_BENCH_PARALLEL", "")
    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", "")
    assert module.engine_kwargs() == {"parallel": None, "cache": None}


def test_determinism_audit_engine_rejects_single_seed():
    with pytest.raises(ValueError):
        determinism_matrix(["cache-attack"], ["jskernel"], seeds=(0,))
