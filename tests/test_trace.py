"""Tests for the tracing & metrics subsystem (:mod:`repro.trace`)."""

import json

import pytest

from repro.harness import run_table1
from repro.runtime.eventloop import EventLoop
from repro.runtime.simtime import ms, us
from repro.runtime.simulator import Simulator
from repro.runtime.task import Microtask
from repro.trace import (
    LATENCY_BUCKETS_NS,
    NULL_TRACER,
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    capture,
    current_tracer,
    dump_chrome_trace,
    format_timeline,
)


def _run_loop_scenario():
    """One delayed task that drains two microtasks, then a second task."""
    sim = Simulator()
    loop = EventLoop(sim, "main", task_dispatch_cost=0)

    def first():
        loop.post_microtask(Microtask(lambda: None, cost=us(3), label="m1"))
        loop.post_microtask(Microtask(lambda: None, cost=us(2), label="m2"))

    loop.post(first, delay=ms(5), cost=us(10), label="first")
    loop.post(lambda: None, delay=ms(9), cost=us(4), label="second")
    sim.run()
    return sim


# ----------------------------------------------------------------------
# spans, nesting and virtual-time ordering
# ----------------------------------------------------------------------
def test_task_spans_are_ordered_by_virtual_time():
    with capture() as tracer:
        _run_loop_scenario()
    spans = [e for e in tracer.events if e["ph"] == "X" and e["thread"] == "main"]
    assert [s["name"] for s in spans] == ["first", "second"]
    first, second = spans
    assert first["ts"] == ms(5)  # ready_time honoured, in virtual ns
    assert first["dur"] >= us(10) + us(3) + us(2)
    # the second span starts strictly after the first ends
    assert second["ts"] >= first["ts"] + first["dur"]
    # emission order is virtual-time order
    assert [s["ts"] for s in spans] == sorted(s["ts"] for s in spans)


def test_microtask_checkpoint_nests_inside_its_task_span():
    with capture() as tracer:
        _run_loop_scenario()
    (first,) = [e for e in tracer.events if e["ph"] == "X" and e["name"] == "first"]
    (mark,) = [e for e in tracer.events if e["name"] == "microtask-checkpoint"]
    assert mark["ph"] == "i"
    assert mark["args"]["count"] == 2
    # the instant falls within the enclosing task span
    assert first["ts"] <= mark["ts"] <= first["ts"] + first["dur"]


def test_queue_delay_is_measured_and_recorded():
    with capture() as tracer:
        _run_loop_scenario()
    spans = [e for e in tracer.events if e["ph"] == "X"]
    for span in spans:
        assert span["args"]["queue_delay_ns"] >= 0
    snap = tracer.metrics.snapshot()
    assert snap["counters"]["eventloop.tasks.script"] == 2
    assert snap["counters"]["eventloop.microtasks.main"] == 2
    assert snap["histograms"]["eventloop.queue_delay_ns.main"]["count"] == 2


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
def test_histogram_bucket_edges_are_inclusive_upper_bounds():
    h = Histogram((10, 100))
    h.record(10)  # lands in the <=10 bucket, not the next one
    h.record(11)
    h.record(100)
    h.record(101)  # overflow bucket
    assert h.counts == [1, 2, 1]
    assert h.count == 4
    assert h.total == 222
    assert h.min == 10
    assert h.max == 101


def test_histogram_latency_bucket_boundary_values_stay_in_their_bucket():
    h = Histogram(LATENCY_BUCKETS_NS)
    h.record(1_000_000)  # exactly on a bucket edge: inclusive upper bound
    h.record(1_000_001)  # one past the edge lands in the next bucket
    edge_index = LATENCY_BUCKETS_NS.index(1_000_000)
    assert h.counts[edge_index] == 1
    assert h.counts[edge_index + 1] == 1
    assert h.count == 2


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((100, 10))


def test_counter_rejects_decrements():
    c = Counter()
    c.inc(2)
    assert c.value == 2
    with pytest.raises(ValueError):
        c.inc(-1)


def test_registry_snapshot_is_plain_json_serialisable_data():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(1.5)
    registry.histogram("h", (10,)).record(7)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 3}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["counts"] == [1, 0]
    json.dumps(snap)  # embeds in harness payloads without custom encoders


def test_snapshot_exports_the_overflow_bucket_explicitly():
    registry = MetricsRegistry()
    h = registry.histogram("h", (10, 100))
    h.record(5)
    h.record(50)
    h.record(101)
    h.record(10**9)
    snap = registry.snapshot()["histograms"]["h"]
    # counts has one more entry than bounds (the implicit last bucket),
    # and the overflow key names that last entry so consumers never have
    # to know the convention
    assert len(snap["counts"]) == len(snap["bounds"]) + 1
    assert snap["counts"] == [1, 1, 2]
    assert snap["overflow"] == 2
    assert snap["overflow"] == snap["counts"][-1]


def test_sketch_observations_tee_histograms_into_sketches():
    registry = MetricsRegistry()
    registry.sketch_observations = True
    h = registry.histogram("lat", (10, 100))
    for value in (1, 7, 120, 120):
        h.record(value)
    registry.histogram("lat", (10, 100))  # same histogram, same sketch
    snap = registry.snapshot()
    sketch = snap["sketches"]["lat"]
    assert sketch["count"] == 4
    assert sketch["sum"] == 248
    # the histogram itself is unchanged by the tee
    assert snap["histograms"]["lat"]["count"] == 4

    # merging a snapshot that carries sketches folds them in
    other = MetricsRegistry()
    other.merge_snapshot(snap)
    other.merge_snapshot(snap)
    assert other.snapshot()["sketches"]["lat"]["count"] == 8

    # without the opt-in flag no sketch is attached and none exported
    plain = MetricsRegistry()
    plain.histogram("lat", (10, 100)).record(1)
    assert "sketches" not in plain.snapshot()


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
def test_chrome_trace_round_trips_through_json():
    with capture() as tracer:
        _run_loop_scenario()
    data = json.loads(dump_chrome_trace(tracer))
    events = data["traceEvents"]
    assert events
    for event in events:
        assert "ph" in event and "ts" in event and "tid" in event and "pid" in event
    thread_rows = [
        e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert "main" in [e["args"]["name"] for e in thread_rows]
    # ts is virtual-time microseconds: the first task ran at 5 ms
    (first,) = [e for e in events if e.get("name") == "first"]
    assert first["ts"] == ms(5) / 1000
    assert first["cat"] == "task"


def test_timeline_is_sorted_and_mentions_events():
    with capture() as tracer:
        _run_loop_scenario()
    text = format_timeline(tracer)
    lines = text.splitlines()
    assert any("first" in line for line in lines)
    stamps = [float(line.split("ms")[0]) for line in lines]
    assert stamps == sorted(stamps)


# ----------------------------------------------------------------------
# disabled fast path
# ----------------------------------------------------------------------
def test_disabled_tracer_collects_nothing():
    assert current_tracer() is NULL_TRACER
    before_events = len(NULL_TRACER)
    before_metrics = NULL_TRACER.metrics.snapshot()
    sim = _run_loop_scenario()  # no capture() active
    assert sim.tracer is NULL_TRACER
    assert sim.trace_pid == 0
    assert len(NULL_TRACER) == before_events == 0
    assert NULL_TRACER.metrics.snapshot() == before_metrics


def test_capture_restores_previous_tracer_on_exit():
    outer = Tracer()
    with capture(outer):
        inner = Tracer()
        with capture(inner):
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is NULL_TRACER


# ----------------------------------------------------------------------
# kernel lifecycle + determinism over a real harness slice
# ----------------------------------------------------------------------
def _capture_matrix_slice() -> Tracer:
    tracer = Tracer()
    with capture(tracer):
        run_table1(attacks=["cve-2018-5092"], defenses=["legacy-chrome", "jskernel"])
    return tracer


def test_kernel_event_lifecycle_appears_as_async_legs():
    tracer = _capture_matrix_slice()
    begins = [e for e in tracer.events if e["ph"] == "b" and e["cat"] == "kernel-event"]
    confirms = [e for e in tracer.events if e["ph"] == "n"]
    ends = [e for e in tracer.events if e["ph"] == "e"]
    assert begins and confirms and ends
    # every leg of one lifecycle shares the span id allocated at register
    span_ids = {e["id"] for e in begins}
    assert {e["id"] for e in ends} <= span_ids


def test_two_seeded_captures_are_byte_identical():
    first = dump_chrome_trace(_capture_matrix_slice())
    second = dump_chrome_trace(_capture_matrix_slice())
    assert first == second


def test_cancelled_kernel_event_exports_its_end_leg():
    from repro.defenses import make_browser

    tracer = Tracer()
    with capture(tracer):
        browser = make_browser("jskernel")
        page = browser.open_page("https://example.test/")

        def script(scope):
            timer_id = scope.setTimeout(lambda: None, 5)
            scope.setTimeout(lambda: scope.clearTimeout(timer_id), 1)

        page.run_script(script, label="cancel-script")
        browser.sim.run()

    cancels = [
        e
        for e in tracer.events
        if e["ph"] == "e"
        and e["cat"] == "kernel-event"
        and "cancelled" in e["args"]
    ]
    assert cancels, "clearTimeout should cancel a registered kernel event"
    # the cancelled leg closes the span opened at registration
    begin_ids = {
        e["id"]
        for e in tracer.events
        if e["ph"] == "b" and e["cat"] == "kernel-event"
    }
    assert all(e["id"] in begin_ids for e in cancels)
    # and it survives Chrome-trace export with its id intact
    exported = json.loads(dump_chrome_trace(tracer))["traceEvents"]
    exported_cancels = [
        e for e in exported if e["ph"] == "e" and "cancelled" in e.get("args", {})
    ]
    assert len(exported_cancels) == len(cancels)
    assert all("id" in e for e in exported_cancels)
