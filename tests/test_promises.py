"""Unit tests for SimPromise microtask semantics."""

import pytest

from repro.runtime.eventloop import EventLoop
from repro.runtime.promises import FULFILLED, PENDING, SimPromise
from repro.runtime.simulator import Simulator


@pytest.fixture
def loop():
    sim = Simulator()
    return EventLoop(sim, "promise-test")


def run(loop):
    loop.sim.run()


def test_then_receives_value(loop):
    seen = []
    promise = SimPromise(loop)
    promise.then(seen.append)
    promise.resolve(42)
    run(loop)
    assert seen == [42]


def test_reactions_are_asynchronous(loop):
    order = []
    promise = SimPromise.resolved(loop, "v")

    def task():
        promise.then(lambda _v: order.append("reaction"))
        order.append("sync")

    loop.post(task)
    run(loop)
    assert order == ["sync", "reaction"]


def test_catch_handles_rejection(loop):
    seen = []
    promise = SimPromise(loop)
    promise.catch(seen.append)
    promise.reject("boom")
    run(loop)
    assert seen == ["boom"]


def test_chaining_transforms_values(loop):
    seen = []
    promise = SimPromise(loop)
    promise.then(lambda v: v + 1).then(lambda v: v * 10).then(seen.append)
    promise.resolve(1)
    run(loop)
    assert seen == [20]


def test_thrown_exception_rejects_chain(loop):
    seen = []

    def boom(_v):
        raise ValueError("nope")

    promise = SimPromise(loop)
    promise.then(boom).catch(lambda reason: seen.append(type(reason).__name__))
    promise.resolve(1)
    run(loop)
    assert seen == ["ValueError"]


def test_rejection_passes_through_then_without_handler(loop):
    seen = []
    promise = SimPromise(loop)
    promise.then(lambda v: v).catch(seen.append)
    promise.reject("reason")
    run(loop)
    assert seen == ["reason"]


def test_settling_twice_is_ignored(loop):
    seen = []
    promise = SimPromise(loop)
    promise.then(seen.append, lambda r: seen.append(("rejected", r)))
    promise.resolve("first")
    promise.resolve("second")
    promise.reject("third")
    run(loop)
    assert seen == ["first"]
    assert promise.state == FULFILLED


def test_resolving_with_promise_adopts_its_state(loop):
    seen = []
    inner = SimPromise(loop)
    outer = SimPromise(loop)
    outer.then(seen.append)
    outer.resolve(inner)
    assert outer.state == PENDING
    inner.resolve("inner-value")
    run(loop)
    assert seen == ["inner-value"]


def test_finally_runs_on_both_paths(loop):
    ran = []
    ok = SimPromise.resolved(loop, 1)
    ok.finally_(lambda: ran.append("ok"))
    bad = SimPromise.rejected_with(loop, RuntimeError("x"))
    bad.finally_(lambda: ran.append("bad")).catch(lambda _r: None)
    run(loop)
    assert sorted(ran) == ["bad", "ok"]


def test_promise_all_collects_in_order(loop):
    seen = []
    a, b, c = SimPromise(loop), SimPromise(loop), SimPromise(loop)
    SimPromise.all(loop, [a, b, c]).then(seen.append)
    b.resolve(2)
    a.resolve(1)
    c.resolve(3)
    run(loop)
    assert seen == [[1, 2, 3]]


def test_promise_all_rejects_on_first_failure(loop):
    seen = []
    a, b = SimPromise(loop), SimPromise(loop)
    SimPromise.all(loop, [a, b]).catch(seen.append)
    b.reject("fail")
    run(loop)
    assert seen == ["fail"]
    assert a.state == PENDING


def test_promise_all_empty_resolves_immediately(loop):
    seen = []
    SimPromise.all(loop, []).then(seen.append)
    run(loop)
    assert seen == [[]]


def test_reaction_cost_consumes_virtual_time(loop):
    sim = loop.sim
    times = {}
    promise = SimPromise.resolved(loop, None)
    promise.then(lambda _v: times.__setitem__("at", sim.now))
    run(loop)
    assert times["at"] > 0  # carrier task dispatch + reaction cost
