"""Property-based tests of the kernel's core security invariant.

The deterministic-scheduling guarantee, stated operationally: **the
sequence of user-visible events and every timestamp/count a page can
observe is a function of the program alone — never of how long any
uninstrumentable (secret) computation took.**

Hypothesis drives a representative attacker program with arbitrary secret
durations injected at several points; the observable trace must be
byte-identical across all of them.
"""

from hypothesis import given, settings, strategies as st

from repro.kernel import JSKernel
from repro.runtime import Browser, chrome
from repro.runtime.origin import parse_url
from repro.runtime.simtime import ms


def observable_trace(secret_ms_a: float, secret_ms_b: float, seed: int) -> list:
    """Run a multi-channel observer program; return everything it can see."""
    browser = Browser(profile=chrome(), seed=seed)
    JSKernel().install(browser)
    browser.network.host_simple(
        parse_url("https://app.example/resource"), 20_000, body="r"
    )
    page = browser.open_page("https://app.example/")
    trace = []

    def script(scope):
        trace.append(("t0", scope.performance.now()))

        # channel 1: timer chain with clock readings
        def tick(n):
            trace.append(("tick", n, scope.performance.now()))
            if n == 2:
                scope.busy_work(secret_ms_a)  # secret work inside a callback
            if n < 5:
                scope.setTimeout(lambda: tick(n + 1), 1)

        scope.setTimeout(lambda: tick(1), 1)

        # channel 2: rAF chain with per-frame secret work
        def frame(ts):
            trace.append(("raf", ts))
            scope.busy_work(secret_ms_b)
            if len([t for t in trace if t[0] == "raf"]) < 3:
                scope.requestAnimationFrame(frame)

        scope.requestAnimationFrame(frame)

        # channel 3: worker message counting (Listing 1's implicit clock)
        def worker_main(ws):
            def flood():
                ws.postMessage("m")
                ws.setTimeout(flood, 1)

            ws.setTimeout(flood, 1)

        worker = scope.Worker(worker_main)
        counts = {"n": 0}
        worker.onmessage = lambda event: counts.__setitem__("n", counts["n"] + 1)

        # channel 4: fetch completion relative to everything else
        scope.fetch("/resource").then(
            lambda r: trace.append(("fetch-done", scope.performance.now(), counts["n"]))
        )

        # channel 5: animation progress sampling around secret work
        el = scope.document.create_element("div")
        scope.document.body.append_child(el)
        scope.animate(el, "left", 0.0, 1000.0, 500.0)

        def sample():
            before = scope.getComputedStyle(el, "left")
            scope.busy_work(secret_ms_a)
            after = scope.getComputedStyle(el, "left")
            trace.append(("anim", before, after))

        scope.setTimeout(sample, 12)

    page.run_script(script)
    browser.run(until=ms(400))
    return trace


@settings(max_examples=12, deadline=None)
@given(
    secret_a=st.floats(min_value=0.0, max_value=40.0),
    secret_b=st.floats(min_value=0.0, max_value=25.0),
)
def test_observable_trace_independent_of_secret_durations(secret_a, secret_b):
    baseline = observable_trace(0.0, 0.0, seed=7)
    varied = observable_trace(secret_a, secret_b, seed=7)
    assert varied == baseline
    assert any(entry[0] == "fetch-done" for entry in baseline)  # program ran


@settings(max_examples=10, deadline=None)
@given(
    kinds=st.lists(
        st.sampled_from(["raf", "network", "dom", "message"]), min_size=2, max_size=12
    )
)
def test_completions_and_messages_keep_floor_order(kinds):
    """Messages are never slotted before earlier-registered completions,
    and completion slots are monotone among themselves."""
    from repro.kernel.policies.deterministic import DeterministicSchedulingPolicy
    from repro.kernel.policy import CompositePolicy, SchedulingGrid
    from repro.kernel.space import KernelSpace
    from repro.runtime.eventloop import EventLoop
    from repro.runtime.simulator import Simulator

    sim = Simulator()
    loop = EventLoop(sim, "prop")
    kspace = KernelSpace(loop, CompositePolicy([DeterministicSchedulingPolicy()]),
                         SchedulingGrid())
    from repro.kernel.scheduler import FLOOR_HORIZON

    last_completion_slot = -1
    for kind in kinds:
        event = kspace.scheduler.register(kind, chain="msg:prop" if kind == "message" else None)
        if kind == "message":
            # a message may never precede an already-registered completion
            assert event.predicted_time > last_completion_slot - FLOOR_HORIZON
            assert event.predicted_time >= min(
                last_completion_slot, kspace.clock.now + FLOOR_HORIZON
            )
        else:
            assert event.predicted_time > last_completion_slot
            last_completion_slot = event.predicted_time


@settings(max_examples=10, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=50), min_size=1, max_size=8))
def test_timer_predictions_are_pure_functions_of_clock_and_delay(delays):
    """Two schedulers given the same call sequence assign identical slots."""
    from repro.kernel.policies.deterministic import DeterministicSchedulingPolicy
    from repro.kernel.policy import CompositePolicy, SchedulingGrid
    from repro.kernel.space import KernelSpace
    from repro.runtime.eventloop import EventLoop
    from repro.runtime.simulator import Simulator

    def slots():
        sim = Simulator()
        loop = EventLoop(sim, "prop")
        kspace = KernelSpace(loop, CompositePolicy([DeterministicSchedulingPolicy()]),
                             SchedulingGrid())
        return [kspace.scheduler.register("timeout", hint=ms(d)).predicted_time
                for d in delays]

    first = slots()
    assert first == slots()
    # and each slot is strictly after its requested delay
    for delay, slot in zip(delays, first):
        assert slot > ms(delay) - 1


@settings(max_examples=15, deadline=None)
@given(
    costs=st.lists(st.integers(min_value=0, max_value=10**7), min_size=1, max_size=20)
)
def test_kernel_clock_deterministic_under_call_pattern(costs):
    """Clock value depends only on the CALL COUNT, not on work between."""
    from repro.kernel.kclock import KernelClock, KernelPerformance
    from repro.runtime.simulator import Simulator

    def run(with_work):
        sim = Simulator()
        clock = KernelClock()
        perf = KernelPerformance(clock, sim)
        readings = []
        for cost in costs:
            if with_work:
                sim.consume(cost)
            readings.append(perf.now())
        return readings

    assert run(True) == run(False)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32))
def test_simulation_is_reproducible_per_seed(seed):
    """Same seed -> identical event counts and end state."""
    def run():
        browser = Browser(profile=chrome(), seed=seed)
        page = browser.open_page("https://x.example/")
        browser.network.host_simple(parse_url("https://x.example/a"), 5_000)
        page.run_script(lambda scope: scope.fetch("/a").then(lambda r: None))
        browser.run(until=ms(100))
        return browser.sim.events_processed, browser.sim.dispatch_time

    assert run() == run()
