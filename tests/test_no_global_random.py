"""Guard: no ``src/repro`` module draws from Python's *global* random state.

Every stochastic decision in the simulated runtime must flow through the
seeded services (``runtime/rng.py``'s named streams, or private
``random.Random`` instances) so that runs are replayable and fuzz
witnesses stay bit-stable.  A single ``random.random()`` call hidden in a
module would silently couple results to interpreter-global state.

Two layers of defence:

* a static AST scan rejecting ``random.<fn>(...)`` module-state calls
  (``random.Random(...)`` construction is explicitly allowed), and
* a dynamic check that running a full traced scenario leaves
  ``random.getstate()`` untouched.
"""

import ast
import os
import random

import repro

SRC_ROOT = os.path.dirname(os.path.abspath(repro.__file__))

#: The only attribute of the ``random`` module repro code may touch:
#: constructing a private, explicitly seeded generator.
ALLOWED_ATTRS = {"Random"}


def _repro_sources():
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _global_random_uses(path):
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    offenders = []
    for node in ast.walk(tree):
        # random.<attr> where <attr> is module-level state
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "random"
            and node.attr not in ALLOWED_ATTRS
        ):
            offenders.append(f"{path}:{node.lineno} random.{node.attr}")
        # `from random import shuffle` style imports of module-state fns
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name not in ALLOWED_ATTRS:
                    offenders.append(
                        f"{path}:{node.lineno} from random import {alias.name}"
                    )
    return offenders


def test_no_module_uses_global_random_state():
    offenders = []
    for path in _repro_sources():
        offenders.extend(_global_random_uses(path))
    assert offenders == [], "global random state used:\n" + "\n".join(offenders)


def test_scenario_run_leaves_global_random_untouched():
    from repro.analysis.scenario import run_traced_scenario

    random.seed(12345)
    before = random.getstate()
    run_traced_scenario("cve-2018-5092", "legacy-chrome", seed=0)
    assert random.getstate() == before
