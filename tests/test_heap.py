"""Unit tests for the simulated native heap (memory-safety substrate)."""

import pytest

from repro.errors import DoubleFreeError, NullDerefError, UseAfterFreeError
from repro.runtime.heap import NULL, SimHeap


@pytest.fixture
def heap():
    return SimHeap()


def test_alloc_and_deref(heap):
    obj = {"payload": 1}
    ptr = heap.alloc(obj, "Widget")
    assert ptr.deref() is obj
    assert not ptr.freed
    assert heap.live_count == 1


def test_free_then_deref_is_uaf(heap):
    ptr = heap.alloc("x", "Widget")
    ptr.free()
    assert ptr.freed
    with pytest.raises(UseAfterFreeError):
        ptr.deref()
    assert heap.violations == ["use-after-free:Widget"]


def test_uaf_carries_cve_tag(heap):
    ptr = heap.alloc("x", "FetchRequest")
    ptr.free()
    with pytest.raises(UseAfterFreeError) as excinfo:
        ptr.deref(cve="CVE-2018-5092")
    assert excinfo.value.cve == "CVE-2018-5092"


def test_double_free_raises(heap):
    ptr = heap.alloc("x", "Widget")
    ptr.free()
    with pytest.raises(DoubleFreeError):
        ptr.free()


def test_null_deref_raises():
    with pytest.raises(NullDerefError):
        NULL.deref()
    assert NULL.is_null


def test_null_free_raises():
    with pytest.raises(NullDerefError):
        NULL.free()


def test_counts(heap):
    pointers = [heap.alloc(i, "Obj") for i in range(3)]
    pointers[0].free()
    assert heap.live_count == 2
    assert heap.freed_count == 1


def test_allocation_records_track_times():
    times = iter([10, 20])
    heap = SimHeap(time_fn=lambda: next(times))
    ptr = heap.alloc("x", "Obj")
    ptr.free()
    record = heap._records[ptr.addr]
    assert record.alloc_time == 10
    assert record.free_time == 20


def test_addresses_are_distinct(heap):
    a = heap.alloc("a", "Obj")
    b = heap.alloc("b", "Obj")
    assert a.addr != b.addr
